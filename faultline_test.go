package lazyxml

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/faultline"
)

// Crash-point matrix over the durability stack: every mutating file
// operation (write, sync, rename, truncate, remove …) a scenario
// performs is, in turn, made the moment the process dies. After each
// simulated crash the directory is reopened with a clean filesystem and
// must come back CheckConsistency-clean, with every document either in
// its pre-crash or post-crash state — never half of one. The matrix runs
// twice: once dropping the failing write whole, once tearing it in half
// (the classic torn tail).

const (
	seedDocA = "<load><item n=\"0\"/><item n=\"1\"/></load>"
	seedDocB = "<load><item n=\"9\"/></load>"
	newDoc   = "<load><fresh/></load>"
	insFrag  = "<item n=\"2\"/>"
)

// seedCrashDir builds the deterministic pre-crash state: two documents,
// one insert, everything folded so each matrix iteration starts from an
// identical directory.
func seedCrashDir(t *testing.T, dir string) {
	t.Helper()
	jc, err := OpenJournaledCollection(dir, LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := jc.Put("a", []byte(seedDocA)); err != nil {
		t.Fatal(err)
	}
	if err := jc.Put("b", []byte(seedDocB)); err != nil {
		t.Fatal(err)
	}
	if err := jc.Close(); err != nil {
		t.Fatal(err)
	}
}

// crashScenario is one cell column of the matrix: a named workload whose
// every fsync/rename/write boundary the matrix walks, plus the states a
// document may legally be in after the crash.
type crashScenario struct {
	name string
	run  func(jc *JournaledCollection) error
	// verify gets the reopened collection; it must accept both the
	// pre-state and any prefix of the scenario's effects.
	verify func(t *testing.T, jc *JournaledCollection, k int64)
}

func textIsOneOf(t *testing.T, jc *JournaledCollection, name string, k int64, want ...string) {
	t.Helper()
	got, err := jc.Text(name)
	if err != nil {
		t.Fatalf("k=%d: Text(%s): %v", k, name, err)
	}
	for _, w := range want {
		if bytes.Equal(got, []byte(w)) {
			return
		}
	}
	t.Fatalf("k=%d: doc %s reopened as %q, not any legal state %q", k, name, got, want)
}

func crashScenarios() []crashScenario {
	afterInsert := seedDocA[:6] + insFrag + seedDocA[6:]
	return []crashScenario{
		{
			name: "put",
			run:  func(jc *JournaledCollection) error { return jc.Put("new", []byte(newDoc)) },
			verify: func(t *testing.T, jc *JournaledCollection, k int64) {
				textIsOneOf(t, jc, "a", k, seedDocA)
				textIsOneOf(t, jc, "b", k, seedDocB)
				if _, err := jc.Text("new"); err == nil {
					textIsOneOf(t, jc, "new", k, newDoc)
				}
			},
		},
		{
			name: "insert",
			run: func(jc *JournaledCollection) error {
				_, err := jc.Insert("a", 6, []byte(insFrag))
				return err
			},
			verify: func(t *testing.T, jc *JournaledCollection, k int64) {
				textIsOneOf(t, jc, "a", k, seedDocA, afterInsert)
				textIsOneOf(t, jc, "b", k, seedDocB)
			},
		},
		{
			name: "delete",
			run:  func(jc *JournaledCollection) error { return jc.Delete("a") },
			verify: func(t *testing.T, jc *JournaledCollection, k int64) {
				if _, err := jc.Text("a"); err == nil {
					textIsOneOf(t, jc, "a", k, seedDocA)
				}
				textIsOneOf(t, jc, "b", k, seedDocB)
			},
		},
		{
			// Compact is the richest cell: docs.snap rewrite + rename,
			// docs.wal truncate, docs.seq meta, then snapshot.lxml
			// rewrite + rename, journal.wal truncate, journal.seq meta.
			name: "compact",
			run: func(jc *JournaledCollection) error {
				if _, err := jc.Insert("a", 6, []byte(insFrag)); err != nil {
					return err
				}
				return jc.Compact()
			},
			verify: func(t *testing.T, jc *JournaledCollection, k int64) {
				textIsOneOf(t, jc, "a", k, seedDocA, seedDocA[:6]+insFrag+seedDocA[6:])
				textIsOneOf(t, jc, "b", k, seedDocB)
			},
		},
	}
}

func TestCrashPointMatrix(t *testing.T) {
	for _, torn := range []bool{false, true} {
		torn := torn
		mode := "drop"
		if torn {
			mode = "torn"
		}
		for _, sc := range crashScenarios() {
			sc := sc
			t.Run(fmt.Sprintf("%s/%s", sc.name, mode), func(t *testing.T) {
				// Sizing run: count the scenario's mutating operations
				// with no fault armed.
				dir := t.TempDir()
				seedCrashDir(t, dir)
				ffs := faultline.NewFaultFS(nil)
				jc, err := OpenJournaledCollection(dir, LD, nil, WithFS(ffs))
				if err != nil {
					t.Fatal(err)
				}
				base := ffs.Mutations()
				if err := sc.run(jc); err != nil {
					t.Fatalf("fault-free run: %v", err)
				}
				n := ffs.Mutations() - base
				jc.Close()
				if n == 0 {
					t.Fatalf("scenario %s performed no mutating I/O; the matrix is empty", sc.name)
				}

				// One cell per mutating operation: the k-th one fails and
				// the process is dead from then on.
				for k := int64(1); k <= n; k++ {
					dir := t.TempDir()
					seedCrashDir(t, dir)
					ffs := faultline.NewFaultFS(nil)
					if torn {
						ffs.TornWrites()
					}
					jc, err := OpenJournaledCollection(dir, LD, nil, WithFS(ffs))
					if err != nil {
						t.Fatalf("k=%d: open: %v", k, err)
					}
					ffs.CrashAfter(ffs.Mutations() + k)
					err = sc.run(jc)
					if !ffs.Crashed() {
						t.Fatalf("k=%d: crash point did not fire", k)
					}
					if err == nil {
						t.Fatalf("k=%d: scenario succeeded across a crash", k)
					}
					if !errors.Is(err, faultline.ErrInjected) {
						t.Fatalf("k=%d: scenario failed with a non-injected error: %v", k, err)
					}
					jc.Close() // descriptors only; the fault plan is already dead

					// The "restart": a clean filesystem over whatever bytes
					// survived. It must reopen consistent — or refuse loudly.
					re, err := OpenJournaledCollection(dir, LD, nil)
					if err != nil {
						t.Fatalf("k=%d: reopen after crash corrupted the store: %v", k, err)
					}
					if err := re.CheckConsistency(); err != nil {
						t.Fatalf("k=%d: reopened store inconsistent: %v", k, err)
					}
					sc.verify(t, re, k)
					if _, err := re.Count("load//item"); err != nil {
						t.Fatalf("k=%d: query after reopen: %v", k, err)
					}
					// The reopened store must also still accept writes and
					// survive a second clean cycle.
					if err := re.Put("post-crash", []byte(newDoc)); err != nil {
						t.Fatalf("k=%d: write after reopen: %v", k, err)
					}
					if err := re.Close(); err != nil {
						t.Fatalf("k=%d: close after reopen: %v", k, err)
					}
				}
			})
		}
	}
}

// TestFaultTargetedErrors drives the FailOp mechanism: a single failing
// call site must surface as an error from the operation that hit it —
// not crash the process, not corrupt the store.
func TestFaultTargetedErrors(t *testing.T) {
	boom := errors.New("disk full")
	cases := []struct {
		name   string
		op     string
		substr string
		run    func(jc *JournaledCollection) error
	}{
		{"wal-write", faultline.OpWrite, "journal.wal",
			func(jc *JournaledCollection) error { return jc.Put("x", []byte(newDoc)) }},
		{"docs-wal-write", faultline.OpWrite, "docs.wal",
			func(jc *JournaledCollection) error { return jc.Put("x", []byte(newDoc)) }},
		{"snapshot-rename", faultline.OpRename, "snapshot.lxml",
			func(jc *JournaledCollection) error { return jc.Compact() }},
		{"docs-snap-rename", faultline.OpRename, "docs.snap",
			func(jc *JournaledCollection) error { return jc.Compact() }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			seedCrashDir(t, dir)
			ffs := faultline.NewFaultFS(nil)
			jc, err := OpenJournaledCollection(dir, LD, nil, WithFS(ffs))
			if err != nil {
				t.Fatal(err)
			}
			ffs.FailOp(tc.op, tc.substr, boom, 0)
			if err := tc.run(jc); !errors.Is(err, boom) {
				t.Fatalf("operation with injected %s on %s returned %v, want the injected error",
					tc.op, tc.substr, err)
			}
			jc.Close()

			re, err := OpenJournaledCollection(dir, LD, nil)
			if err != nil {
				t.Fatalf("reopen after local fault: %v", err)
			}
			defer re.Close()
			if err := re.CheckConsistency(); err != nil {
				t.Fatalf("store inconsistent after local fault: %v", err)
			}
			textIsOneOf(t, re, "a", 0, seedDocA)
			textIsOneOf(t, re, "b", 0, seedDocB)
		})
	}
}

// TestCrashDuringSeqMetaPersistence pins the narrowest window: the crash
// lands exactly on the seq-meta WriteFile/Rename pair that Compact runs
// after truncating the WAL — the store must reopen with its replication
// positions intact (monotonic, never reset below what was applied).
func TestCrashDuringSeqMetaPersistence(t *testing.T) {
	for _, target := range []string{"journal.seq", "docs.seq"} {
		target := target
		t.Run(target, func(t *testing.T) {
			dir := t.TempDir()
			seedCrashDir(t, dir)
			ffs := faultline.NewFaultFS(nil)
			jc, err := OpenJournaledCollection(dir, LD, nil, WithFS(ffs))
			if err != nil {
				t.Fatal(err)
			}
			seqBefore, _ := jc.Journal().ReplState()
			docBefore, _ := jc.DocReplState()
			ffs.FailOp(faultline.OpWriteFile, target, faultline.ErrInjected, 0)
			if err := jc.Compact(); err == nil {
				t.Fatal("compact succeeded across an injected seq-meta failure")
			}
			jc.Close()

			re, err := OpenJournaledCollection(dir, LD, nil)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer re.Close()
			if err := re.CheckConsistency(); err != nil {
				t.Fatalf("inconsistent after seq-meta crash: %v", err)
			}
			seqAfter, _ := re.Journal().ReplState()
			docAfter, _ := re.DocReplState()
			if seqAfter < seqBefore || docAfter < docBefore {
				t.Fatalf("replication positions went backwards: seq %d→%d, docSeq %d→%d",
					seqBefore, seqAfter, docBefore, docAfter)
			}
			textIsOneOf(t, re, "a", 0, seedDocA)
			textIsOneOf(t, re, "b", 0, seedDocB)
		})
	}
}
