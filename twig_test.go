package lazyxml

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQueryTwigBasics(t *testing.T) {
	db := Open(LD)
	mustAppend(t, db, "<a><b><c/></b><b/><c/></a>")
	tuples, err := db.QueryTwig("a//b//c")
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 {
		t.Fatalf("tuples = %d, want 1", len(tuples))
	}
	tu := tuples[0]
	if len(tu) != 3 {
		t.Fatalf("tuple width = %d", len(tu))
	}
	// Outermost-first, properly nested.
	for i := 1; i < len(tu); i++ {
		if !(tu[i-1].Start < tu[i].Start && tu[i].End <= tu[i-1].End) {
			t.Fatalf("tuple not nested: %v", tu)
		}
	}
}

func TestQueryTwigSingleStep(t *testing.T) {
	db := Open(LD)
	mustAppend(t, db, "<a><b/><b/></a>")
	tuples, err := db.QueryTwig("b")
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 2 {
		t.Fatalf("tuples = %d", len(tuples))
	}
}

func TestQueryTwigBadPath(t *testing.T) {
	db := Open(LD)
	if _, err := db.QueryTwig(""); err == nil {
		t.Fatal("empty path accepted")
	}
}

func TestQueryTwigCrossSegments(t *testing.T) {
	db := Open(LD)
	mustAppend(t, db, "<a><x></x></a>")
	if _, err := db.Insert(6, []byte("<b><c/></b>")); err != nil {
		t.Fatal(err)
	}
	tuples, err := db.QueryTwig("a//b/c")
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 {
		t.Fatalf("tuples = %d, want 1", len(tuples))
	}
}

// TestQuickTwigProjectionMatchesPipeline: the (last-two-steps) projection
// of the holistic tuples must equal the binary-join pipeline's result
// pairs — two very different implementations of the same semantics.
func TestQuickTwigProjectionMatchesPipeline(t *testing.T) {
	paths := []string{"a//b", "a/b", "a//b//c", "a//b/c", "a/b//c", "a//a//b"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := Open(LD)
		for i := 0; i < 8; i++ {
			frag := randomSnapshotFragment(r, []string{"a", "b", "c"})
			gp := 0
			if db.Len() > 0 {
				ms, err := db.Query("a")
				if err != nil {
					return false
				}
				if len(ms) > 0 {
					gp = ms[r.Intn(len(ms))].DescEnd
				}
			}
			if _, err := db.Insert(gp, []byte(frag)); err != nil {
				return false
			}
		}
		for _, path := range paths {
			tuples, err := db.QueryTwig(path)
			if err != nil {
				return false
			}
			proj := map[[2]int]bool{}
			for _, tu := range tuples {
				proj[[2]int{tu[len(tu)-2].Start, tu[len(tu)-1].Start}] = true
			}
			ms, err := db.Query(path)
			if err != nil {
				return false
			}
			pairs := map[[2]int]bool{}
			for _, m := range ms {
				pairs[[2]int{m.AncStart, m.DescStart}] = true
			}
			if len(proj) != len(pairs) {
				t.Logf("seed %d path %s: twig %v vs pipeline %v", seed, path, proj, pairs)
				return false
			}
			for k := range proj {
				if !pairs[k] {
					t.Logf("seed %d path %s: twig-only pair %v", seed, path, k)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
