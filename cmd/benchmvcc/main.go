// Command benchmvcc measures what MVCC snapshot reads buy the query
// path under a compact storm. It runs read workers against one durable
// journaled collection for a fixed duration while (optionally) a storm
// goroutine alternates small writes with full Compact cycles, and
// reports read latency percentiles.
//
// Two read disciplines are compared:
//
//   - view (the engine's own path): every query runs lock-free against
//     a generation-stamped immutable snapshot view, so a compact in
//     flight costs a reader at most one view rebuild.
//   - gated (the pre-MVCC discipline, reproduced for the baseline):
//     every query first takes the read side of a lock whose write side
//     the storm holds across each durable insert and each compact —
//     exactly what the collection lock used to impose, where reads
//     queued behind every WAL fsync and every snapshot rewrite.
//
// scripts/bench_mvcc.sh runs the lanes back to back and records
// BENCH_mvcc.json.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	lazyxml "repro"
)

// frag builds one fragment: a small indexed structure plus pad bytes of
// inert text. The padding is the lever that separates the two costs
// under comparison — a compact must encode and fsync every text byte,
// while a view rebuild clones only the index structures and shares the
// text zero-copy.
func frag(n, pad int) []byte {
	return []byte(fmt.Sprintf("<person><phone>%04d</phone><note>%s</note></person>",
		n%10000, strings.Repeat("x", pad)))
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchmvcc: ")
	var (
		docs     = flag.Int("docs", 16, "documents to seed")
		frags    = flag.Int("frags", 8, "fragments per seeded document")
		workers  = flag.Int("c", 1, "concurrent read workers")
		duration = flag.Duration("d", 3*time.Second, "measurement duration")
		mode     = flag.String("mode", "view", "read discipline: view | gated")
		storm    = flag.Bool("storm", true, "run the write+compact storm")
		pace     = flag.Duration("storm-interval", 2*time.Millisecond, "pause between storm compact cycles")
		pad      = flag.Int("pad", 32768, "inert text bytes per fragment")
	)
	flag.Parse()
	if *mode != "view" && *mode != "gated" {
		log.Fatalf("unknown -mode %q", *mode)
	}

	dir, err := os.MkdirTemp("", "benchmvcc-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	jc, err := lazyxml.OpenJournaledCollection(dir, lazyxml.LD, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer jc.Close()
	for i := 0; i < *docs; i++ {
		text := []byte("<people>")
		for j := 0; j < *frags; j++ {
			text = append(text, frag(*frags*i+j, *pad)...)
		}
		text = append(text, "</people>"...)
		if err := jc.Put(fmt.Sprintf("doc-%d", i), text); err != nil {
			log.Fatal(err)
		}
	}

	// In gated mode readers and the compactor share this lock, exactly
	// as they shared the store lock before snapshot views existed. In
	// view mode it is never touched.
	var gate sync.RWMutex

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var compacts int
	if *storm {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				case <-time.After(*pace):
				}
				if *mode == "gated" {
					gate.Lock()
				}
				if _, err := jc.Insert("doc-0", len("<people>"), frag(n, *pad)); err != nil {
					log.Fatal(err)
				}
				if err := jc.Compact(); err != nil {
					log.Fatal(err)
				}
				if *mode == "gated" {
					gate.Unlock()
				}
				compacts++
			}
		}()
	}

	// Each read op is a scan: a doc-scoped structural count over every
	// document except the storm's target. Heavy enough that storm cycles
	// make up well over 1% of ops — a stall moves p99, not just max. A
	// view rebuild after a generation bump is paid once by the first
	// count and shared by the rest of the scan and all ops that follow.
	lats := make([][]time.Duration, *workers)
	var rwg sync.WaitGroup
	deadline := time.Now().Add(*duration)
	for w := 0; w < *workers; w++ {
		w := w
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for time.Now().Before(deadline) {
				start := time.Now()
				for d := 1; d < *docs; d++ {
					name := fmt.Sprintf("doc-%d", d)
					if *mode == "gated" {
						gate.RLock()
					}
					_, err := jc.CountDoc(name, "person/phone")
					if *mode == "gated" {
						gate.RUnlock()
					}
					if err != nil {
						log.Fatal(err)
					}
				}
				lats[w] = append(lats[w], time.Since(start))
			}
		}()
	}
	rwg.Wait()
	close(stop)
	wg.Wait()

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		log.Fatal("no reads completed")
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p int) time.Duration { return all[len(all)*p/100] }
	fmt.Printf("mode=%s storm=%v docs=%d workers=%d pad=%d duration=%v\n",
		*mode, *storm, *docs, *workers, *pad, *duration)
	fmt.Printf("  reads  n=%d p50=%v p95=%v p99=%v max=%v compacts=%d\n",
		len(all), pct(50), pct(95), pct(99), all[len(all)-1], compacts)
}
