package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonSIGTERMDrainAndRestart builds the daemon, runs it against a
// journal directory, updates it over HTTP, SIGTERMs it, and checks both
// the clean exit and that a second run restores the state from
// snapshot + WAL.
func TestDaemonSIGTERMDrainAndRestart(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not in PATH")
	}
	bin := filepath.Join(t.TempDir(), "lazyxmld")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building daemon: %v\n%s", err, out)
	}
	dir := t.TempDir()

	// A fixed free port, reused across both runs.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	base := "http://" + addr

	start := func() *exec.Cmd {
		cmd := exec.Command(bin, "-addr", addr, "-journal", dir, "-drain", "5s")
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			resp, err := http.Get(base + "/healthz")
			if err == nil {
				resp.Body.Close()
				return cmd
			}
			time.Sleep(50 * time.Millisecond)
		}
		cmd.Process.Kill()
		t.Fatal("daemon did not become healthy")
		return nil
	}

	cmd := start()
	put, err := http.NewRequest("PUT", base+"/docs/d", strings.NewReader("<d></d>"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(put)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("put: %d", resp.StatusCode)
	}
	for i := 0; i < 5; i++ {
		resp, err := http.Post(base+"/docs/d/insert?off=3", "application/xml",
			strings.NewReader(fmt.Sprintf("<x n=\"%d\"/>", i)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("insert %d: %d", i, resp.StatusCode)
		}
	}

	// SIGTERM: the daemon must drain and exit zero.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited dirty after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatal("daemon did not exit after SIGTERM")
	}

	// Restart: snapshot + WAL replay must restore the five inserts.
	cmd = start()
	defer func() {
		cmd.Process.Signal(syscall.SIGTERM)
		cmd.Wait()
	}()
	resp, err = http.Get(base + "/docs/d/count?path=d//x")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "\"count\":5") {
		t.Fatalf("count after restart: %d %s", resp.StatusCode, body)
	}
	resp, err = http.Post(base+"/check", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatal("consistency check after restart failed")
	}
}
