package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildDaemon compiles lazyxmld once per test into a temp dir.
func buildDaemon(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not in PATH")
	}
	bin := filepath.Join(t.TempDir(), "lazyxmld")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building daemon: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves a loopback port and releases it for the daemon.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitHealthy(t *testing.T, cmd *exec.Cmd, base string) {
	t.Helper()
	for i := 0; i < 200; i++ {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatal("daemon did not become healthy")
}

func httpDo(t *testing.T, method, url string, body string) (int, string) {
	t.Helper()
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// followerStats is the slice of the follower's /stats the test reads.
type followerStats struct {
	Docs   int `json:"docs"`
	Shards []struct {
		Shard          int   `json:"shard"`
		JournalRecords int64 `json:"journalRecords"`
		JournalBytes   int64 `json:"journalBytes"`
		Seq            int64 `json:"seq"`
		DocSeq         int64 `json:"docSeq"`
	} `json:"shards"`
	Replication *struct {
		Primary   string `json:"primary"`
		Connected bool   `json:"connected"`
		Lag       int64  `json:"lag"`
		Shards    []struct {
			AppliedSeq int64 `json:"appliedSeq"`
			PrimarySeq int64 `json:"primarySeq"`
		} `json:"shards"`
	} `json:"replication"`
}

func getStats(t *testing.T, base string) followerStats {
	t.Helper()
	status, body := httpDo(t, "GET", base+"/stats", "")
	if status != http.StatusOK {
		t.Fatalf("GET /stats: %d %s", status, body)
	}
	var st followerStats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("parsing /stats: %v\n%s", err, body)
	}
	return st
}

// TestFollowerCrashRestartResumes is the satellite crash test: a primary
// and a follower run as real subprocesses, the follower is SIGKILLed
// mid-stream, the primary keeps writing, and a restarted follower must
// resume from its durable sequence and converge to a consistent,
// query-identical store — with lag exported via /stats.
func TestFollowerCrashRestartResumes(t *testing.T) {
	bin := buildDaemon(t)
	pdir, fdir := t.TempDir(), t.TempDir()
	paddr, faddr, raddr := freeAddr(t), freeAddr(t), freeAddr(t)
	pbase, fbase := "http://"+paddr, "http://"+faddr

	primary := exec.Command(bin, "-addr", paddr, "-journal", pdir, "-shards", "2", "-repl", raddr)
	primary.Stderr = os.Stderr
	if err := primary.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		primary.Process.Signal(syscall.SIGTERM)
		primary.Wait()
	}()
	waitHealthy(t, primary, pbase)

	startFollower := func() *exec.Cmd {
		cmd := exec.Command(bin, "-addr", faddr, "-journal", fdir, "-shards", "2", "-follow", raddr)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		waitHealthy(t, cmd, fbase)
		return cmd
	}
	follower := startFollower()

	// Writes are refused on the follower with the primary's address.
	status, body := httpDo(t, "PUT", fbase+"/docs/nope", "<nope/>")
	if status != http.StatusForbidden || !strings.Contains(body, raddr) {
		t.Fatalf("follower write: %d %s (want 403 naming the primary)", status, body)
	}

	if status, body := httpDo(t, "PUT", pbase+"/docs/d", "<d></d>"); status != http.StatusCreated {
		t.Fatalf("put: %d %s", status, body)
	}
	insert := func(n int) {
		for i := 0; i < n; i++ {
			status, body := httpDo(t, "POST", pbase+"/docs/d/insert?off=3", fmt.Sprintf("<x n=\"%d\"/>", i))
			if status != http.StatusCreated {
				t.Fatalf("insert: %d %s", status, body)
			}
		}
	}
	insert(30)

	// Wait until the follower has applied something, then SIGKILL it —
	// no drain, no clean close, a real crash.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := getStats(t, fbase)
		if st.Docs >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never started applying")
		}
		time.Sleep(50 * time.Millisecond)
	}
	follower.Process.Kill()
	follower.Wait()

	// The primary keeps moving while the follower is dead.
	insert(30)

	// Restart over the same journal dir: it must resume and converge.
	follower = startFollower()
	defer func() {
		follower.Process.Signal(syscall.SIGTERM)
		follower.Wait()
	}()
	deadline = time.Now().Add(15 * time.Second)
	for {
		st := getStats(t, fbase)
		if st.Replication == nil {
			t.Fatalf("follower /stats has no replication block")
		}
		if st.Replication.Primary != raddr {
			t.Fatalf("replication.primary = %q, want %q", st.Replication.Primary, raddr)
		}
		if st.Replication.Connected && st.Replication.Lag == 0 && st.Docs == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged: %+v", st.Replication)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Identical query answers and a clean consistency check.
	wantStatus, wantBody := httpDo(t, "GET", pbase+"/docs/d/count?path=d//x", "")
	gotStatus, gotBody := httpDo(t, "GET", fbase+"/docs/d/count?path=d//x", "")
	if wantStatus != http.StatusOK || gotStatus != wantStatus || gotBody != wantBody {
		t.Fatalf("count diverged: primary %d %s, follower %d %s", wantStatus, wantBody, gotStatus, gotBody)
	}
	if !strings.Contains(wantBody, "\"count\":60") {
		t.Fatalf("primary count = %s, want 60", wantBody)
	}
	if status, body := httpDo(t, "POST", fbase+"/check", ""); status != http.StatusOK {
		t.Fatalf("follower /check: %d %s", status, body)
	}

	// The journal footprint satellite: per-shard journalRecords/Bytes and
	// replication sequences are exported on both nodes.
	pst := getStats(t, pbase)
	var recs, bytes, seqs int64
	for _, sh := range pst.Shards {
		recs += sh.JournalRecords
		bytes += sh.JournalBytes
		seqs += sh.Seq + sh.DocSeq
	}
	if recs == 0 || bytes == 0 || seqs == 0 {
		t.Fatalf("primary /stats journal fields empty: %+v", pst.Shards)
	}
}
