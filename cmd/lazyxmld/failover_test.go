package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

// readyzInfo is the identity block every member reports on /readyz.
type readyzInfo struct {
	Ready      bool   `json:"ready"`
	Role       string `json:"role"`
	Epoch      int64  `json:"epoch"`
	RelayDepth int    `json:"relayDepth"`
	ReplAddr   string `json:"replAddr"`
	Upstream   string `json:"upstream"`
}

func getReadyz(base string) (readyzInfo, error) {
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		return readyzInfo{}, err
	}
	defer resp.Body.Close()
	var info readyzInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return readyzInfo{}, err
	}
	return info, nil
}

func pollUntil(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestSentinelFailoverChainSubprocess is the full self-healing story as
// real processes: a P → A → B relay chain with a co-located sentinel on
// every member takes acknowledged writes; P is SIGKILLed; the sentinels
// latch it down and promote the most-caught-up survivor with the
// fencing token (concurrent sentinels — one loses on the 409); writes
// keep flowing through the new regime; P restarts with its old primary
// state and the boot-time census demotes it into the new regime, where
// the forced re-seed converges it. Zero acknowledged writes lost.
func TestSentinelFailoverChainSubprocess(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos e2e")
	}
	bin := buildDaemon(t)
	pdir, adir, bdir := t.TempDir(), t.TempDir(), t.TempDir()
	paddr, aaddr, baddr := freeAddr(t), freeAddr(t), freeAddr(t)
	rp, ra, rb := freeAddr(t), freeAddr(t), freeAddr(t)
	pbase, abase := "http://"+paddr, "http://"+aaddr
	bbase := "http://" + baddr
	peerFlag := pbase + "," + abase + "," + bbase

	start := func(addr, dir, follow, relay string) *exec.Cmd {
		args := []string{"-addr", addr, "-journal", dir, "-shards", "2",
			"-relay", relay, "-peers", peerFlag, "-sentinel"}
		if follow != "" {
			args = append(args, "-follow", follow)
		}
		cmd := exec.Command(bin, args...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}

	primary := start(paddr, pdir, "", rp)
	defer func() {
		primary.Process.Kill()
		primary.Wait()
	}()
	waitHealthy(t, primary, pbase)

	relayA := start(aaddr, adir, rp, ra)
	defer func() {
		relayA.Process.Signal(syscall.SIGTERM)
		relayA.Wait()
	}()
	waitHealthy(t, relayA, abase)

	tailB := start(baddr, bdir, ra, rb)
	defer func() {
		tailB.Process.Signal(syscall.SIGTERM)
		tailB.Wait()
	}()
	waitHealthy(t, tailB, bbase)

	// Acknowledged writes through the primary.
	var acked []string
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("doc-%d", i)
		if status, body := httpDo(t, "PUT", pbase+"/docs/"+name, fmt.Sprintf("<d><n>%d</n></d>", i)); status != http.StatusCreated {
			t.Fatalf("PUT %s: %d %s", name, status, body)
		}
		acked = append(acked, name)
	}
	hasAll := func(base string, names []string) bool {
		for _, n := range names {
			resp, err := http.Get(base + "/docs/" + n)
			if err != nil {
				return false
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return false
			}
		}
		return true
	}
	pollUntil(t, "chain convergence before the kill", 30*time.Second, func() bool {
		return hasAll(abase, acked) && hasAll(bbase, acked)
	})

	// The topology surface the sentinel steers by: relay depths 1 and 2,
	// and the co-located sentinel's snapshot in /stats.
	pollUntil(t, "relay depths to settle", 15*time.Second, func() bool {
		ai, erra := getReadyz(abase)
		bi, errb := getReadyz(bbase)
		return erra == nil && errb == nil && ai.RelayDepth == 1 && bi.RelayDepth == 2
	})
	if _, body := httpDo(t, "GET", pbase+"/stats", ""); !strings.Contains(body, `"sentinel"`) {
		t.Fatalf("/stats with -sentinel lacks the sentinel block: %s", body)
	}

	// Kill the primary outright — no drain, no goodbye.
	primary.Process.Kill()
	primary.Wait()

	// The sentinels elect and promote exactly one survivor at epoch 1.
	var winBase, loseBase string
	pollUntil(t, "a survivor to be promoted", 60*time.Second, func() bool {
		ai, erra := getReadyz(abase)
		bi, errb := getReadyz(bbase)
		if erra != nil || errb != nil {
			return false
		}
		switch {
		case ai.Role == "primary" && bi.Role == "follower":
			winBase, loseBase = abase, bbase
		case bi.Role == "primary" && ai.Role == "follower":
			winBase, loseBase = bbase, abase
		default:
			return false
		}
		wi, _ := getReadyz(winBase)
		return wi.Epoch == 1
	})

	// Writes flow through the new regime and reach the other survivor.
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("after-%d", i)
		if status, body := httpDo(t, "PUT", winBase+"/docs/"+name, "<d><y/></d>"); status != http.StatusCreated {
			t.Fatalf("PUT %s on new primary: %d %s", name, status, body)
		}
		acked = append(acked, name)
	}
	pollUntil(t, "post-failover replication", 30*time.Second, func() bool {
		return hasAll(loseBase, acked)
	})

	// The deposed primary restarts with its old state and *no* -follow:
	// left alone it would claim primacy at epoch 0. The boot census must
	// demote it into the new regime, and the forced re-seed converges it.
	revived := start(paddr, pdir, "", rp)
	defer func() {
		revived.Process.Signal(syscall.SIGTERM)
		revived.Wait()
	}()
	waitHealthy(t, revived, pbase)
	pollUntil(t, "deposed primary to rejoin as a follower", 60*time.Second, func() bool {
		pi, err := getReadyz(pbase)
		return err == nil && pi.Role == "follower" && pi.Epoch == 1
	})
	pollUntil(t, "deposed primary to converge", 60*time.Second, func() bool {
		return hasAll(pbase, acked)
	})
	// And it is write-fenced: the new primary's address is in the 403.
	if status, _ := httpDo(t, "PUT", pbase+"/docs/nope", "<nope/>"); status != http.StatusForbidden {
		t.Fatalf("write on rejoined deposed primary: %d, want 403", status)
	}

	// Zero lost acknowledged writes, everywhere.
	for _, base := range []string{winBase, loseBase, pbase} {
		if !hasAll(base, acked) {
			t.Fatalf("%s is missing acknowledged writes", base)
		}
	}
}
