// Command lazyxmld serves a lazy XML collection over HTTP: the network
// daemon over the engine. With -journal it is durable — every update is
// WAL'd before it is applied, and a killed daemon restarts from
// snapshot + replay. Without it the collection lives in memory.
//
// Usage:
//
//	lazyxmld [-addr :8080] [-journal dir] [-shards 1] [-mode ld|ls]
//	         [-alg lazy|std|skip|auto] [-attrs] [-values] [-sync]
//	         [-timeout 30s] [-drain 10s] [-writers 1] [-readers 0]
//	         [-compact-on-exit] [-repl addr] [-follow addr]
//
// With -shards N documents are routed by name hash across N independent
// stores, each with its own journal directory (shard-0000, …) and its
// own writer slot, so writes to different shards apply concurrently. The
// default of 1 preserves the single-store on-disk layout: a journal
// directory from an unsharded daemon reopens unchanged. A directory
// created with N > 1 remembers its shard count (shards.meta) and that
// persisted count wins over the flag.
//
// Replication (both sides require -journal: replication ships the WAL):
//
//	-repl addr    serve the binary replication/bulk-load protocol on
//	              addr; followers subscribe here, lazyload -bulk loads
//	              here.
//	-follow addr  run as a read-only follower of the primary whose
//	              -repl listener is at addr. Writes get 403 plus the
//	              primary's address; replication lag is exported under
//	              "replication" in /stats and /metrics. The shard count
//	              must match the primary's.
//
// Routes (all responses JSON unless noted):
//
//	GET    /healthz                     liveness
//	GET    /stats                       engine sizes, update-log footprint
//	GET    /metrics                     request counters, latency histograms
//	GET    /docs                        list document names
//	PUT    /docs/{name}                 add a document (body: XML)
//	GET    /docs/{name}                 current document text (XML)
//	DELETE /docs/{name}                 remove a document
//	POST   /docs/{name}/insert?off=N    insert a fragment (body: XML)
//	DELETE /docs/{name}/range?off=N&len=L   remove a byte range
//	DELETE /docs/{name}/element?off=N   remove one element
//	GET    /query?path=a//b             whole-collection structural query
//	GET    /count?path=a//b             cardinality only
//	GET    /docs/{name}/query?path=...  document-scoped query
//	GET    /docs/{name}/count?path=...  document-scoped cardinality
//	POST   /compact                     fold the journal into a snapshot
//	POST   /rebuild                     collapse every document's segments
//	POST   /check                       verify index consistency
//
// On SIGINT/SIGTERM the daemon stops accepting connections, drains
// in-flight requests (up to -drain), then closes the journal.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	lazyxml "repro"
	"repro/internal/repl"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	journalDir := flag.String("journal", "", "directory of the durable journal (empty: in-memory)")
	shards := flag.Int("shards", 1, "independent stores; documents are routed by name hash (1 = single store, legacy layout)")
	syncWAL := flag.Bool("sync", false, "fsync the journal on every update (durable against power loss)")
	mode := flag.String("mode", "ld", "maintenance mode: ld (lazy dynamic) or ls (lazy static)")
	alg := flag.String("alg", "lazy", "join algorithm: lazy, std, skip or auto")
	attrs := flag.Bool("attrs", false, "index attributes as @name pseudo-elements")
	values := flag.Bool("values", false, "index element/attribute values for equality predicates")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline, queue wait included")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	writers := flag.Int("writers", 1, "concurrently applied updates (1 = single-writer, many-reader)")
	readers := flag.Int("readers", 0, "max concurrent read requests (0 = unlimited)")
	maxBody := flag.Int64("max-body", 32<<20, "max upload size in bytes")
	compactOnExit := flag.Bool("compact-on-exit", false, "fold the journal into a snapshot during shutdown")
	replAddr := flag.String("repl", "", "serve the binary replication/bulk-load protocol on this address (requires -journal)")
	follow := flag.String("follow", "", "follow the primary whose -repl listener is at this address (requires -journal; read-only)")
	flag.Parse()

	if (*replAddr != "" || *follow != "") && *journalDir == "" {
		log.Fatalf("lazyxmld: -repl and -follow require -journal: replication ships the write-ahead log")
	}
	if *replAddr != "" && *follow != "" {
		log.Fatalf("lazyxmld: -repl and -follow are mutually exclusive: a node is a primary or a follower")
	}

	var m lazyxml.Mode
	switch strings.ToLower(*mode) {
	case "ld":
		m = lazyxml.LD
	case "ls":
		m = lazyxml.LS
	default:
		log.Fatalf("lazyxmld: unknown mode %q", *mode)
	}
	var a lazyxml.Algorithm
	switch strings.ToLower(*alg) {
	case "lazy":
		a = lazyxml.LazyJoin
	case "std":
		a = lazyxml.STD
	case "skip":
		a = lazyxml.SkipSTD
	case "auto":
		a = lazyxml.Auto
	default:
		log.Fatalf("lazyxmld: unknown algorithm %q", *alg)
	}
	dbOpts := []lazyxml.Option{lazyxml.WithAlgorithm(a)}
	if *attrs {
		dbOpts = append(dbOpts, lazyxml.WithAttributes())
	}
	if *values {
		dbOpts = append(dbOpts, lazyxml.WithValues())
	}

	var backend server.Backend
	var sc *lazyxml.ShardedCollection
	if *journalDir != "" {
		var jOpts []lazyxml.JournalOption
		if *syncWAL {
			jOpts = append(jOpts, lazyxml.WithSync())
		}
		var err error
		sc, err = lazyxml.OpenShardedCollection(*journalDir, *shards, m, dbOpts, jOpts...)
		if err != nil {
			log.Fatalf("lazyxmld: opening journal %s: %v", *journalDir, err)
		}
		backend = sc
		if sc.ShardCount() != *shards {
			log.Printf("lazyxmld: journal %s already holds %d shards; -shards %d ignored",
				*journalDir, sc.ShardCount(), *shards)
		}
		log.Printf("lazyxmld: journal %s restored: %d documents, %d segments, %d shard(s)",
			*journalDir, sc.Len(), sc.Stats().Segments, sc.ShardCount())
	} else if *shards > 1 {
		backend = lazyxml.NewShardedCollection(*shards, m, dbOpts...)
		log.Printf("lazyxmld: in-memory collection, %d shards (no -journal: state dies with the process)", *shards)
	} else {
		backend = lazyxml.NewCollection(m, dbOpts...)
		log.Printf("lazyxmld: in-memory collection (no -journal: state dies with the process)")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srvCfg := server.Config{
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		Writers:        *writers,
		Readers:        *readers,
	}

	// Replication: a primary serves the stream, a follower applies it.
	var primary *repl.Primary
	folErr := make(chan error, 1)
	if *replAddr != "" {
		p, err := repl.NewPrimary(sc, repl.PrimaryConfig{Logf: log.Printf})
		if err != nil {
			log.Fatalf("lazyxmld: %v", err)
		}
		ln, err := net.Listen("tcp", *replAddr)
		if err != nil {
			log.Fatalf("lazyxmld: replication listener on %s: %v", *replAddr, err)
		}
		primary = p
		go func() {
			if err := p.Serve(ln); err != nil {
				log.Printf("lazyxmld: replication listener: %v", err)
			}
		}()
		log.Printf("lazyxmld: replicating on %s (%d shard(s))", ln.Addr(), sc.ShardCount())
	}
	if *follow != "" {
		f, err := repl.NewFollower(sc, *follow, repl.FollowerConfig{Logf: log.Printf})
		if err != nil {
			log.Fatalf("lazyxmld: %v", err)
		}
		srvCfg.PrimaryAddr = *follow
		srvCfg.ReplStatus = func() any { return f.Status() }
		go func() { folErr <- f.Run(ctx) }()
		log.Printf("lazyxmld: following %s (read-only; writes 403 to the primary)", *follow)
	}

	srv := server.New(backend, srvCfg)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("lazyxmld: serving on %s (mode=%s alg=%s shards=%d writers=%d timeout=%s)",
		*addr, m, *alg, backend.ShardCount(), *writers, *timeout)

	select {
	case err := <-errCh:
		log.Fatalf("lazyxmld: %v", err)
	case err := <-folErr:
		// The follower only returns between signal and shutdown (nil) or
		// on a fatal, non-retryable error (incompatible primary, behind
		// the compaction horizon, diverged history).
		if err != nil {
			log.Fatalf("lazyxmld: follower: %v", err)
		}
	case <-ctx.Done():
	}
	stop()
	log.Printf("lazyxmld: shutting down, draining for up to %s", *drain)
	if primary != nil {
		primary.Close()
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("lazyxmld: drain: %v", err)
	}
	if sc != nil {
		if *compactOnExit {
			if err := sc.Compact(); err != nil {
				log.Printf("lazyxmld: compact on exit: %v", err)
			}
		}
		if err := sc.Close(); err != nil {
			log.Printf("lazyxmld: closing journal: %v", err)
		}
	}
	met := srv.Metrics()
	fmt.Printf("lazyxmld: served %d requests (%d errors), bye\n", met.Requests, met.Errors)
}
