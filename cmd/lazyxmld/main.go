// Command lazyxmld serves a lazy XML collection over HTTP: the network
// daemon over the engine. With -journal it is durable — every update is
// WAL'd before it is applied, and a killed daemon restarts from
// snapshot + replay. Without it the collection lives in memory.
//
// Usage:
//
//	lazyxmld [-addr :8080] [-journal dir] [-shards 1] [-mode ld|ls]
//	         [-alg lazy|std|skip|auto] [-attrs] [-values] [-sync]
//	         [-group-commit] [-commit-window 0]
//	         [-plan] [-cache-bytes 67108864]
//	         [-timeout 30s] [-drain 10s] [-writers 0] [-readers 0]
//	         [-write-queue 64] [-shed-after 1s] [-ready-max-lag 0]
//	         [-compact-on-exit] [-repl addr] [-relay addr] [-follow addr]
//	         [-peers url,url,...] [-sentinel]
//	         [-auto-compact] [-compact-segments 64] [-compact-log-bytes N]
//	         [-compact-interval 5s] [-compact-view-age 30s]
//
// Group commit (-group-commit, requires -journal): each shard runs a
// commit lane — concurrent writers enqueue, a leader applies the whole
// queue and makes it durable with a single WAL write plus a single
// fsync, then wakes every waiter with its individual result. No write
// is acknowledged before its record is on disk, so -sync durability is
// preserved while its per-op fsync cost amortizes across the batch.
// -commit-window adds a bounded wait (e.g. 1ms) that gathers larger
// batches at low concurrency; 0 relies on natural batching alone (ops
// arriving during a flush form the next batch). -writers defaults to 32
// under -group-commit so concurrent requests actually meet in the lane.
// Batch sizes and flush latencies are exported under "groupCommit" in
// /metrics, per-shard lane counters under "groupCommit" in /stats, and
// POST /batch submits many ops in one request.
//
// Query planning (-plan): every query runs through the cost-based
// planner, which prices the whole join arsenal (Lazy-Join, parallel
// Lazy-Join, Stack-Tree-Desc/Anc, SkipJoin, XB-tree, PathStack twig)
// against per-tag update-log statistics and picks the cheapest, and
// results are cached in a byte-bounded LRU keyed by each shard's
// (store, generation) pair — any write to a shard invalidates exactly
// that shard's entries, for free. ?algo=lazy|parallel|std|skip|sta|xb|
// twig forces a strategy per request (works without -plan too),
// ?explain=1 returns the chosen plan with per-operator cost estimates,
// ?nocache=1 bypasses the cache. Cache counters and per-algorithm picks
// appear under "planner" in /stats and /metrics. On a follower the same
// cache keys on the follower's own applied generation, so cached reads
// stay exactly as fresh as replication has made the store.
//
// With -shards N documents are routed by name hash across N independent
// stores, each with its own journal directory (shard-0000, …) and its
// own writer slot, so writes to different shards apply concurrently. The
// default of 1 preserves the single-store on-disk layout: a journal
// directory from an unsharded daemon reopens unchanged. A directory
// created with N > 1 remembers its shard count (shards.meta) and that
// persisted count wins over the flag.
//
// Replication (both sides require -journal: replication ships the WAL):
//
//	-repl addr    serve the binary replication/bulk-load protocol on
//	              addr; followers subscribe here, lazyload -bulk loads
//	              here.
//	-follow addr  run as a read-only follower of the primary whose
//	              -repl listener is at addr. Writes get 403 plus the
//	              primary's address; replication lag is exported under
//	              "replication" in /stats and /metrics. The shard count
//	              must match the primary's. A follower that fell below
//	              the primary's compaction horizon re-seeds itself from
//	              a streamed snapshot automatically.
//
// -repl and -follow combine: a follower that also serves the replication
// protocol can feed its own downstream replicas (a relay; -relay is an
// alias of -repl that reads better on such nodes), and after POST
// /promote it is a fully-formed primary. Promotion stops the stream,
// bumps the store's replication epoch (fencing off the deposed
// primary's records) and makes this server writable, all without a
// restart. Each node's distance from the root primary is announced in
// the replication handshake and exported as relayDepth.
//
// Self-healing cluster (-peers, -sentinel):
//
//	-peers a,b,c  the cluster members' HTTP base URLs. At boot a node
//	              that would start writable first asks the peers who is
//	              primary: if one answers with an epoch at least as
//	              high as its own, the node starts as that primary's
//	              follower instead — a deposed primary that restarts
//	              rejoins the cluster rather than split-braining it.
//	              With -peers set, a fatal replication error no longer
//	              kills the daemon; the node idles until a sentinel (or
//	              an operator, via POST /retarget) re-points it.
//	-sentinel     run the failover supervisor in-process: probe every
//	              peer's /readyz, declare the primary dead only after K
//	              consecutive failed probes, elect the most-caught-up
//	              reachable follower, drive POST /promote with the
//	              observed epoch as a fencing token, and re-point
//	              survivors whose upstream died. Requires -peers. Safe
//	              to run on every member: racing sentinels are
//	              serialized by the fencing token.
//
// Auto-compaction (-auto-compact): a background controller polls each
// shard's segment count and WAL footprint and applies the paper's §5.3
// remedy on its own — collapsing the worst-fragmented documents once
// the count crosses -compact-segments (with hysteresis, releasing at
// half the watermark) and folding a shard's journal once it exceeds
// -compact-log-bytes, every -compact-interval at most. Maintenance
// takes the same per-shard write slots as client writes, runs only
// while this node is the writable primary, and defers horizon-moving
// compacts (bounded) while a live follower still lags or a reader
// still holds an MVCC snapshot view of an older generation past
// -compact-view-age. Its counters appear under "maintenance" in
// /stats and /metrics.
//
// Overload shedding: at most -write-queue writes may wait on one shard's
// lane, and none waits longer than -shed-after; beyond either bound the
// daemon answers 503 with a Retry-After header instead of queuing.
// GET /readyz reports 503 while a re-seed is installing or (with
// -ready-max-lag > 0) while replication lag exceeds that many records —
// the signal a load balancer uses to route around a stale replica.
//
// Routes (all responses JSON unless noted):
//
//	GET    /healthz                     liveness
//	GET    /readyz                      traffic-worthiness (503 while re-seeding/lagging)
//	GET    /stats                       engine sizes, update-log footprint
//	GET    /metrics                     request counters, latency histograms
//	GET    /docs                        list document names
//	PUT    /docs/{name}                 add a document (body: XML)
//	GET    /docs/{name}                 current document text (XML)
//	DELETE /docs/{name}                 remove a document
//	POST   /docs/{name}/insert?off=N    insert a fragment (body: XML)
//	DELETE /docs/{name}/range?off=N&len=L   remove a byte range
//	DELETE /docs/{name}/element?off=N   remove one element
//	POST   /batch                       apply many write ops in one request
//	                                    (body: {"ops":[{"op":"put"|"delete"|
//	                                    "insert"|"remove"|"removeElement",
//	                                    "doc":...,"off":N,"len":L,"text":...}]};
//	                                    per-op results in request order)
//	GET    /query?path=a//b             whole-collection structural query
//	                                    (&algo= force, &explain=1 plan, &nocache=1)
//	GET    /count?path=a//b             cardinality only
//	GET    /docs/{name}/query?path=...  document-scoped query (same planner params)
//	GET    /docs/{name}/count?path=...  document-scoped cardinality
//	POST   /compact                     fold the journal into a snapshot
//	POST   /rebuild                     collapse every document's segments
//	POST   /check                       verify index consistency
//	POST   /promote                     turn this follower into the writable primary
//	                                    (?epoch=N fences racing promoters)
//	POST   /retarget?addr=host:port     re-point this node's replication upstream
//
// On SIGINT/SIGTERM the daemon stops accepting connections, drains
// in-flight requests (up to -drain), then closes the journal.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	lazyxml "repro"
	"repro/internal/cluster"
	"repro/internal/maintain"
	"repro/internal/repl"
	"repro/internal/sentinel"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	journalDir := flag.String("journal", "", "directory of the durable journal (empty: in-memory)")
	shards := flag.Int("shards", 1, "independent stores; documents are routed by name hash (1 = single store, legacy layout)")
	syncWAL := flag.Bool("sync", false, "fsync the journal on every update (durable against power loss)")
	groupCommit := flag.Bool("group-commit", false, "leader-based group commit: concurrent writers share one WAL write+fsync per batch (requires -journal)")
	commitWindow := flag.Duration("commit-window", 0, "with -group-commit: wait up to this long gathering a batch before flushing (0 = natural batching only)")
	mode := flag.String("mode", "ld", "maintenance mode: ld (lazy dynamic) or ls (lazy static)")
	alg := flag.String("alg", "lazy", "join algorithm: lazy, std, skip or auto")
	attrs := flag.Bool("attrs", false, "index attributes as @name pseudo-elements")
	values := flag.Bool("values", false, "index element/attribute values for equality predicates")
	plan := flag.Bool("plan", false, "cost-based query planning + generation-keyed result cache on every query")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "result-cache budget in bytes (with -plan; <= 0 disables caching)")
	queryBudget := flag.Int64("query-budget", 0, "per-query buffered-state cap in bytes; exceeding it fails the query with 507 (0 = unlimited)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline, queue wait included")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	writers := flag.Int("writers", 0, "concurrently applied updates per shard (0 = auto: 1, or 32 with -group-commit)")
	readers := flag.Int("readers", 0, "accepted for compatibility and ignored: reads run lock-free against MVCC snapshot views")
	writeQueue := flag.Int("write-queue", 64, "max writes queued per shard lane before shedding with 503 (-1 = unbounded)")
	shedAfter := flag.Duration("shed-after", time.Second, "max time a write waits for its shard slot before shedding with 503 (-1 = wait the full deadline)")
	readyMaxLag := flag.Int64("ready-max-lag", 0, "readyz reports 503 when replication lag exceeds this many records (0 = lag never gates readiness)")
	maxBody := flag.Int64("max-body", 32<<20, "max upload size in bytes")
	compactOnExit := flag.Bool("compact-on-exit", false, "fold the journal into a snapshot during shutdown")
	replAddr := flag.String("repl", "", "serve the binary replication/bulk-load protocol on this address (requires -journal)")
	relayAddr := flag.String("relay", "", "alias of -repl: serve the replication protocol so this node can feed downstream replicas")
	follow := flag.String("follow", "", "follow the primary whose -repl listener is at this address (requires -journal; read-only until promoted)")
	peers := flag.String("peers", "", "comma-separated HTTP base URLs of all cluster members (enables boot-time primary discovery and runtime re-targeting)")
	sentinelOn := flag.Bool("sentinel", false, "run the failover supervisor in-process (requires -peers)")
	autoCompact := flag.Bool("auto-compact", false, "run the background maintenance controller (collapse/compact from §5.3 thresholds)")
	compactSegments := flag.Int("compact-segments", maintain.DefaultSegmentsHigh, "auto-compact: per-shard segment-count high watermark")
	compactLogBytes := flag.Int64("compact-log-bytes", maintain.DefaultLogBytesHigh, "auto-compact: per-shard journal bytes that trigger a compact")
	compactInterval := flag.Duration("compact-interval", 5*time.Second, "auto-compact: polling interval")
	compactViewAge := flag.Duration("compact-view-age", maintain.DefaultMaxViewAge, "auto-compact: defer generation-bumping work while a stale snapshot view at least this old is retained (negative disables)")
	flag.Parse()

	if *relayAddr != "" {
		if *replAddr != "" && *replAddr != *relayAddr {
			log.Fatalf("lazyxmld: -repl %s and -relay %s disagree; they are aliases, set one", *replAddr, *relayAddr)
		}
		*replAddr = *relayAddr
	}
	if (*replAddr != "" || *follow != "") && *journalDir == "" {
		log.Fatalf("lazyxmld: -repl and -follow require -journal: replication ships the write-ahead log")
	}
	if *groupCommit && *journalDir == "" {
		log.Fatalf("lazyxmld: -group-commit requires -journal: the lane batches WAL flushes")
	}
	if *commitWindow != 0 && !*groupCommit {
		log.Fatalf("lazyxmld: -commit-window only applies with -group-commit")
	}
	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, strings.TrimSuffix(p, "/"))
		}
	}
	if *sentinelOn && len(peerList) == 0 {
		log.Fatalf("lazyxmld: -sentinel requires -peers: a supervisor with no member list has nothing to watch")
	}

	var m lazyxml.Mode
	switch strings.ToLower(*mode) {
	case "ld":
		m = lazyxml.LD
	case "ls":
		m = lazyxml.LS
	default:
		log.Fatalf("lazyxmld: unknown mode %q", *mode)
	}
	var a lazyxml.Algorithm
	switch strings.ToLower(*alg) {
	case "lazy":
		a = lazyxml.LazyJoin
	case "std":
		a = lazyxml.STD
	case "skip":
		a = lazyxml.SkipSTD
	case "auto":
		a = lazyxml.Auto
	default:
		log.Fatalf("lazyxmld: unknown algorithm %q", *alg)
	}
	dbOpts := []lazyxml.Option{lazyxml.WithAlgorithm(a)}
	if *attrs {
		dbOpts = append(dbOpts, lazyxml.WithAttributes())
	}
	if *values {
		dbOpts = append(dbOpts, lazyxml.WithValues())
	}

	var backend server.Backend
	var sc *lazyxml.ShardedCollection
	if *journalDir != "" {
		var jOpts []lazyxml.JournalOption
		if *syncWAL {
			jOpts = append(jOpts, lazyxml.WithSync())
		}
		if *groupCommit {
			jOpts = append(jOpts, lazyxml.WithGroupCommit(*commitWindow))
			log.Printf("lazyxmld: group commit on (window %v): concurrent writers share WAL flushes", *commitWindow)
		}
		var err error
		sc, err = lazyxml.OpenShardedCollection(*journalDir, *shards, m, dbOpts, jOpts...)
		if err != nil {
			log.Fatalf("lazyxmld: opening journal %s: %v", *journalDir, err)
		}
		backend = sc
		if sc.ShardCount() != *shards {
			log.Printf("lazyxmld: journal %s already holds %d shards; -shards %d ignored",
				*journalDir, sc.ShardCount(), *shards)
		}
		log.Printf("lazyxmld: journal %s restored: %d documents, %d segments, %d shard(s)",
			*journalDir, sc.Len(), sc.Stats().Segments, sc.ShardCount())
	} else if *shards > 1 {
		backend = lazyxml.NewShardedCollection(*shards, m, dbOpts...)
		log.Printf("lazyxmld: in-memory collection, %d shards (no -journal: state dies with the process)", *shards)
	} else {
		backend = lazyxml.NewCollection(m, dbOpts...)
		log.Printf("lazyxmld: in-memory collection (no -journal: state dies with the process)")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srvCfg := server.Config{
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		Writers:        *writers,
		Readers:        *readers,
		WriteQueue:     *writeQueue,
		ShedAfter:      *shedAfter,
		QueryBudget:    *queryBudget,
		GroupCommit:    *groupCommit,
	}
	if *queryBudget > 0 {
		log.Printf("lazyxmld: per-query memory budget %dB (507 on exceed)", *queryBudget)
	}

	if *plan {
		qp := lazyxml.NewQueryPlanner(*cacheBytes)
		backend.EnablePlanner(qp)
		srvCfg.Planned = true
		srvCfg.PlanStatus = func() any { return qp.Stats() }
		log.Printf("lazyxmld: query planner on (result cache %dB, generation-keyed)", *cacheBytes)
	}

	// Replication: cluster.Node owns this node's role for its whole life
	// — boot-time follower, runtime re-target via POST /retarget, and
	// promotion — and keeps a co-located relay primary consistent across
	// re-seeds and epoch changes. A standalone journaled primary gets the
	// same wiring so /readyz and /stats report its role and epoch.
	var node *cluster.Node
	var primary *repl.Primary
	if sc != nil {
		upstream := *follow
		if upstream == "" && len(peerList) > 0 {
			// Boot-time epoch census: a node that would start writable
			// first asks the peers who is primary. Deferring to any live
			// primary with an epoch at least as high as our own is how a
			// deposed primary rejoins after a restart instead of
			// split-braining the cluster.
			if rAddr, peer, epoch, ok := discoverPrimary(peerList, sc.Epoch()); ok {
				log.Printf("lazyxmld: peer census: %s is primary at epoch %d (local epoch %d); starting as its follower",
					peer, epoch, sc.Epoch())
				upstream = rAddr
			}
		}
		ncfg := cluster.Config{
			Upstream:        upstream,
			Follower:        repl.FollowerConfig{Logf: log.Printf},
			ReseedOnDiverge: len(peerList) > 0,
			ReadyMaxLag:     *readyMaxLag,
			Logf:            log.Printf,
		}
		if upstream != "" && *follow == "" {
			// The census just demoted a would-be primary: its history may
			// hold acknowledged records the new regime never saw, and WAL
			// positions cannot detect divergence unless we are strictly
			// ahead. Discard and re-seed before the first subscribe.
			ncfg.Follower.ForceInitialReseed = true
		}
		if len(peerList) == 0 {
			// Standalone follower semantics predate the cluster layer: a
			// fatal, non-retryable replication error (incompatible
			// primary, diverged history, deposed primary) kills the
			// daemon. In a cluster the node idles instead — a sentinel or
			// an operator re-points it with POST /retarget.
			ncfg.OnFatal = func(err error) { log.Fatalf("lazyxmld: follower: %v", err) }
		}
		node = cluster.New(sc, ncfg)
		if *replAddr != "" {
			p, err := repl.NewPrimary(sc, repl.PrimaryConfig{Logf: log.Printf, QueryBudget: *queryBudget, Depth: node.RelayDepth})
			if err != nil {
				log.Fatalf("lazyxmld: %v", err)
			}
			ln, err := net.Listen("tcp", *replAddr)
			if err != nil {
				log.Fatalf("lazyxmld: replication listener on %s: %v", *replAddr, err)
			}
			primary = p
			node.AttachPrimary(p)
			go func() {
				if err := p.Serve(ln); err != nil {
					log.Printf("lazyxmld: replication listener: %v", err)
				}
			}()
			log.Printf("lazyxmld: replicating on %s (%d shard(s))", ln.Addr(), sc.ShardCount())
		}
		if err := node.Start(ctx); err != nil {
			log.Fatalf("lazyxmld: %v", err)
		}
		node.Wire(&srvCfg, *replAddr)
		if upstream != "" {
			log.Printf("lazyxmld: following %s (read-only; writes 403 to the primary)", upstream)
		}
	}

	if *sentinelOn {
		snt := sentinel.New(sentinel.Config{Peers: peerList, Logf: log.Printf})
		srvCfg.SentinelStatus = func() any { return snt.Status() }
		go snt.Run(ctx)
		log.Printf("lazyxmld: sentinel watching %d member(s)", len(peerList))
	}

	// The controller is created after the server (it schedules through
	// the server's write gate) but before the listener goroutine starts,
	// so the MaintStatus closure never observes a half-built controller.
	var ctl *maintain.Controller
	if *autoCompact {
		srvCfg.MaintStatus = func() any { return ctl.Snapshot() }
	}
	srv := server.New(backend, srvCfg)
	if *autoCompact {
		mcfg := maintain.Config{
			Interval: *compactInterval,
			Policy: maintain.Policy{
				SegmentsHigh:       *compactSegments,
				LogBytesHigh:       *compactLogBytes,
				MaxRetainedViewAge: *compactViewAge,
			},
			IsPrimary: func() bool {
				if node != nil {
					return node.Role() == cluster.RolePrimary
				}
				return srv.PrimaryAddr() == ""
			},
			GateShard: srv.ExclusiveShard,
			Logf:      log.Printf,
		}
		if primary != nil {
			mcfg.SubscriberLag = primary.SubscriberLag
		}
		ctl = maintain.New(backend, mcfg)
		go ctl.Run(ctx)
		log.Printf("lazyxmld: auto-compaction on (segments ≥ %d, journal ≥ %dB, every %s)",
			*compactSegments, *compactLogBytes, *compactInterval)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	effWriters := *writers
	if effWriters <= 0 {
		effWriters = 1
		if *groupCommit {
			effWriters = 32
		}
	}
	log.Printf("lazyxmld: serving on %s (mode=%s alg=%s shards=%d writers=%d timeout=%s)",
		*addr, m, *alg, backend.ShardCount(), effWriters, *timeout)

	select {
	case err := <-errCh:
		log.Fatalf("lazyxmld: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("lazyxmld: shutting down, draining for up to %s", *drain)
	if primary != nil {
		primary.Close()
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("lazyxmld: drain: %v", err)
	}
	if sc != nil {
		if *compactOnExit {
			if err := sc.Compact(); err != nil {
				log.Printf("lazyxmld: compact on exit: %v", err)
			}
		}
		if err := sc.Close(); err != nil {
			log.Printf("lazyxmld: closing journal: %v", err)
		}
	}
	met := srv.Metrics()
	fmt.Printf("lazyxmld: served %d requests (%d errors), bye\n", met.Requests, met.Errors)
}

// discoverPrimary asks each peer's /readyz who the primary is and picks
// the one at the highest epoch that is at least selfEpoch. Both the 200
// and 503 bodies carry the role/epoch/replAddr triple, so even an
// unready primary (say, mid-re-seed of a downstream) is discoverable.
func discoverPrimary(peers []string, selfEpoch int64) (replAddr, peerURL string, epoch int64, ok bool) {
	client := &http.Client{Timeout: 1500 * time.Millisecond}
	for _, peer := range peers {
		resp, err := client.Get(peer + "/readyz")
		if err != nil {
			continue
		}
		var body struct {
			Role     string `json:"role"`
			Epoch    int64  `json:"epoch"`
			ReplAddr string `json:"replAddr"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil || body.Role != "primary" || body.ReplAddr == "" {
			continue
		}
		if body.Epoch >= selfEpoch && (!ok || body.Epoch > epoch) {
			replAddr, peerURL, epoch, ok = body.ReplAddr, peer, body.Epoch, true
		}
	}
	return replAddr, peerURL, epoch, ok
}
