// Command xmlgen emits deterministic XML test data on standard output:
// the synthetic documents and XMark-like auction data used by the
// benchmarks, plus single person/item/article fragments for update
// workloads.
//
// Usage:
//
//	xmlgen -kind synthetic [-elements N] [-tags N] [-depth N] [-seed S]
//	xmlgen -kind xmark     [-persons N] [-items N] [-seed S]
//	xmlgen -kind deep      [-depth N]
//	xmlgen -kind person    [-seed S]
//	xmlgen -kind item      [-seed S]
//	xmlgen -kind article   [-seed S]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/xmlgen"
)

// genConfig carries every flag; emit dispatches on Kind.
type genConfig struct {
	Kind     string
	Elements int
	Tags     int
	Depth    int
	Persons  int
	Items    int
	Seed     int64
}

// emit produces the requested document or fragment.
func emit(cfg genConfig) ([]byte, error) {
	switch cfg.Kind {
	case "synthetic":
		tagNames := make([]string, cfg.Tags)
		for i := range tagNames {
			tagNames[i] = fmt.Sprintf("t%d", i)
		}
		return xmlgen.Synthetic(xmlgen.SyntheticConfig{
			Seed: cfg.Seed, Elements: cfg.Elements, Tags: tagNames, MaxDepth: cfg.Depth,
		}), nil
	case "xmark":
		return xmlgen.XMark(xmlgen.XMarkConfig{
			Seed: cfg.Seed, Persons: cfg.Persons, Items: cfg.Items,
		}), nil
	case "deep":
		return xmlgen.DeepChain(cfg.Depth, nil), nil
	case "person":
		r := rand.New(rand.NewSource(cfg.Seed))
		return []byte(xmlgen.Person(r, int(cfg.Seed), xmlgen.XMarkConfig{})), nil
	case "item":
		r := rand.New(rand.NewSource(cfg.Seed))
		return []byte(xmlgen.Item(r, int(cfg.Seed))), nil
	case "article":
		r := rand.New(rand.NewSource(cfg.Seed))
		return []byte(xmlgen.DBLPArticle(r, fmt.Sprintf("journals/x/%d", cfg.Seed), 2005)), nil
	default:
		return nil, fmt.Errorf("unknown kind %q", cfg.Kind)
	}
}

func main() {
	cfg := genConfig{}
	flag.StringVar(&cfg.Kind, "kind", "synthetic", "synthetic, xmark, deep, person, item or article")
	flag.IntVar(&cfg.Elements, "elements", 1000, "synthetic: approximate element count")
	flag.IntVar(&cfg.Tags, "tags", 6, "synthetic: tag alphabet size")
	flag.IntVar(&cfg.Depth, "depth", 6, "synthetic/deep: maximum nesting depth")
	flag.IntVar(&cfg.Persons, "persons", 50, "xmark: person count")
	flag.IntVar(&cfg.Items, "items", 20, "xmark: item count")
	flag.Int64Var(&cfg.Seed, "seed", 1, "generator seed")
	flag.Parse()

	out, err := emit(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xmlgen:", err)
		os.Exit(2)
	}
	os.Stdout.Write(out)
	fmt.Println()
}
