package main

import (
	"bytes"
	"testing"

	"repro/internal/xmltree"
)

func TestEmitKinds(t *testing.T) {
	kinds := []string{"synthetic", "xmark", "deep", "person", "item", "article"}
	for _, kind := range kinds {
		out, err := emit(genConfig{
			Kind: kind, Elements: 50, Tags: 4, Depth: 5, Persons: 5, Items: 3, Seed: 7,
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if _, err := xmltree.Parse(out); err != nil {
			t.Fatalf("%s output does not parse: %v", kind, err)
		}
	}
	if _, err := emit(genConfig{Kind: "bogus"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestEmitDeterministic(t *testing.T) {
	cfg := genConfig{Kind: "xmark", Persons: 10, Items: 2, Seed: 42}
	a, _ := emit(cfg)
	b, _ := emit(cfg)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed, different output")
	}
	cfg.Seed = 43
	c, _ := emit(cfg)
	if bytes.Equal(a, c) {
		t.Fatal("different seed, same output")
	}
}
