package main

import (
	"path/filepath"
	"testing"

	lazyxml "repro"
)

func newDB(t *testing.T) *lazyxml.DB {
	t.Helper()
	return lazyxml.Open(lazyxml.LD)
}

func TestRunInsertQueryStats(t *testing.T) {
	db := newDB(t)
	steps := []struct {
		cmd, rest string
		wantErr   bool
	}{
		{"append", "<a><b/></a>", false},
		{"insert", "3 <c/>", false},
		{"query", "a//c", false},
		{"count", "a//b", false},
		{"stats", "", false},
		{"text", "", false},
		{"check", "", false},
		{"rebuild", "", false},
		{"help", "", false},
		{"insert", "notanumber <x/>", true},
		{"insert", "onlyoffset", true},
		{"remove", "1", true},
		{"remove", "x y", true},
		{"append", "", true},
		{"rmel", "notanumber", true},
		{"twig", "a//c", false},
		{"twig", "a[", true},
		{"pattern", "a[b]", false},
		{"pattern", "a[b[c]]", true},
		{"segments", "", false},
		{"collapse", "1", false},
		{"collapse", "notanumber", true},
		{"collapse", "99", true},
		{"nosuchcommand", "", true},
		{"save", "", true},
		{"snapshot", "", true},
	}
	for _, s := range steps {
		err := run(db, db, nil, s.cmd, s.rest)
		if s.wantErr && err == nil {
			t.Errorf("%s %q: expected error", s.cmd, s.rest)
		}
		if !s.wantErr && err != nil {
			t.Errorf("%s %q: %v", s.cmd, s.rest, err)
		}
	}
}

func TestRunRemoveAndFiles(t *testing.T) {
	dir := t.TempDir()
	db := newDB(t)
	if err := run(db, db, nil, "append", "<a><b/><c/></a>"); err != nil {
		t.Fatal(err)
	}
	if err := run(db, db, nil, "rmel", "3"); err != nil { // <b/>
		t.Fatal(err)
	}
	if err := run(db, db, nil, "remove", "3 4"); err != nil { // <c/>
		t.Fatal(err)
	}
	if err := run(db, db, nil, "check", ""); err != nil {
		t.Fatal(err)
	}
	xml := filepath.Join(dir, "out.xml")
	snap := filepath.Join(dir, "out.snap")
	if err := run(db, db, nil, "save", xml); err != nil {
		t.Fatal(err)
	}
	if err := run(db, db, nil, "snapshot", snap); err != nil {
		t.Fatal(err)
	}
	got, err := lazyxml.RestoreFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := got.Count("a"); n != 1 {
		t.Fatalf("restored count = %d", n)
	}
	if err := run(db, db, nil, "quit", ""); err != errQuit {
		t.Fatalf("quit returned %v", err)
	}
}

func TestRunJournaled(t *testing.T) {
	dir := t.TempDir()
	jdb, err := lazyxml.OpenJournal(dir, lazyxml.LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	db := jdb.DB
	if err := run(db, jdb, jdb, "append", "<a><b/></a>"); err != nil {
		t.Fatal(err)
	}
	if err := run(db, jdb, jdb, "compact", ""); err != nil {
		t.Fatal(err)
	}
	if err := run(db, jdb, jdb, "rmel", "3"); err != nil {
		t.Fatal(err)
	}
	jdb.Close()
	// Reopen: compacted snapshot + journaled removal both replay.
	j2, err := lazyxml.OpenJournal(dir, lazyxml.LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if n, _ := j2.Count("a//b"); n != 0 {
		t.Fatal("journaled removal lost")
	}
	if n, _ := j2.Count("a"); n != 1 {
		t.Fatal("snapshot content lost")
	}
	// compact outside journal mode errors.
	plain := newDB(t)
	if err := run(plain, plain, nil, "compact", ""); err == nil {
		t.Fatal("compact without journal succeeded")
	}
}
