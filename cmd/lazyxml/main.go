// Command lazyxml is an interactive driver for a lazy XML database: it
// loads an XML file (or starts empty) and accepts update and query
// commands on standard input.
//
// Usage:
//
//	lazyxml [-mode ld|ls] [-alg lazy|std|skip|auto] [-attrs] [-values]
//	        [-restore] [-journal dir] [file.xml]
//
// Commands:
//
//	insert <offset> <fragment>   insert a segment at a byte offset
//	append <fragment>            insert at the end of the super document
//	remove <offset> <length>     remove a byte range (whole elements)
//	rmel <offset>                remove the element starting at offset
//	query <path>                 evaluate a//b/c-style path expressions
//	count <path>                 like query, print only the cardinality
//	twig <path>                  holistic evaluation, full tuples per match
//	pattern <expr>               twig patterns with predicates, e.g.
//	                             person[name='Ann']//watch (needs -values
//	                             for value predicates, -attrs for @attr)
//	collapse <sid>               pack a segment subtree into one segment
//	stats                        segments/elements/log sizes
//	text                         print the super document
//	check                        verify index consistency against the text
//	rebuild                      collapse into a single segment
//	save <file>                  write the super document to a file
//	snapshot <file>              persist the full store (log + index)
//	compact                      fold the journal into a snapshot (-journal)
//	help                         this list
//	quit
//
// Pass -restore to load a snapshot instead of an XML file.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	lazyxml "repro"
)

func main() {
	mode := flag.String("mode", "ld", "maintenance mode: ld (lazy dynamic) or ls (lazy static)")
	alg := flag.String("alg", "lazy", "join algorithm: lazy, std, skip or auto")
	restore := flag.Bool("restore", false, "treat the file argument as a snapshot, not XML")
	attrs := flag.Bool("attrs", false, "index attributes as @name pseudo-elements")
	values := flag.Bool("values", false, "index element/attribute values for equality predicates")
	journal := flag.String("journal", "", "directory of a durable journaled database (WAL + snapshot)")
	flag.Parse()

	var m lazyxml.Mode
	switch strings.ToLower(*mode) {
	case "ld":
		m = lazyxml.LD
	case "ls":
		m = lazyxml.LS
	default:
		fmt.Fprintf(os.Stderr, "lazyxml: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	var a lazyxml.Algorithm
	switch strings.ToLower(*alg) {
	case "lazy":
		a = lazyxml.LazyJoin
	case "std":
		a = lazyxml.STD
	case "skip":
		a = lazyxml.SkipSTD
	case "auto":
		a = lazyxml.Auto
	default:
		fmt.Fprintf(os.Stderr, "lazyxml: unknown algorithm %q\n", *alg)
		os.Exit(2)
	}
	opts := []lazyxml.Option{lazyxml.WithAlgorithm(a)}
	if *attrs {
		opts = append(opts, lazyxml.WithAttributes())
	}
	if *values {
		opts = append(opts, lazyxml.WithValues())
	}

	var db *lazyxml.DB
	var jdb *lazyxml.JournaledDB
	if *journal != "" {
		var err error
		jdb, err = lazyxml.OpenJournal(*journal, m, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lazyxml:", err)
			os.Exit(1)
		}
		defer jdb.Close()
		db = jdb.DB
		fmt.Printf("journaled database %s: %d bytes, %d elements, %d segments\n",
			*journal, db.Len(), db.Stats().Elements, db.Segments())
	} else if flag.NArg() > 0 {
		var err error
		if *restore {
			db, err = lazyxml.RestoreFile(flag.Arg(0), opts...)
		} else {
			db, err = lazyxml.OpenFile(flag.Arg(0), m, opts...)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "lazyxml:", err)
			os.Exit(1)
		}
		fmt.Printf("loaded %s: %d bytes, %d elements, %d segments\n",
			flag.Arg(0), db.Len(), db.Stats().Elements, db.Segments())
	} else {
		db = lazyxml.Open(m, opts...)
		fmt.Println("empty database; use insert/append to add segments")
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		cmd, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		var up updater = db
		if jdb != nil {
			up = jdb
		}
		if err := run(db, up, jdb, strings.ToLower(cmd), rest); err != nil {
			if err == errQuit {
				return
			}
			fmt.Println("error:", err)
		}
	}
}

var errQuit = fmt.Errorf("quit")

// updater routes structural updates either straight to the DB or through
// the write-ahead journal.
type updater interface {
	Insert(gp int, fragment []byte) (lazyxml.SID, error)
	Append(fragment []byte) (lazyxml.SID, error)
	Remove(gp, l int) error
	RemoveElementAt(gp int) error
}

func run(db *lazyxml.DB, up updater, jdb *lazyxml.JournaledDB, cmd, rest string) error {
	switch cmd {
	case "quit", "exit":
		return errQuit
	case "help":
		fmt.Println("insert <offset> <fragment> | append <fragment> | remove <offset> <length> |",
			"rmel <offset> | query <path> | count <path> | twig <path> | pattern <expr> |",
			"segments | collapse <sid> | stats | text | check | rebuild |",
			"save <file> | snapshot <file> | compact | quit")
	case "insert":
		offStr, frag, ok := strings.Cut(rest, " ")
		if !ok {
			return fmt.Errorf("usage: insert <offset> <fragment>")
		}
		off, err := strconv.Atoi(offStr)
		if err != nil {
			return err
		}
		sid, err := up.Insert(off, []byte(strings.TrimSpace(frag)))
		if err != nil {
			return err
		}
		fmt.Printf("segment %d inserted at %d\n", sid, off)
	case "append":
		if rest == "" {
			return fmt.Errorf("usage: append <fragment>")
		}
		sid, err := up.Append([]byte(rest))
		if err != nil {
			return err
		}
		fmt.Printf("segment %d appended\n", sid)
	case "remove":
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return fmt.Errorf("usage: remove <offset> <length>")
		}
		off, err1 := strconv.Atoi(fields[0])
		l, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("offset and length must be integers")
		}
		if err := up.Remove(off, l); err != nil {
			return err
		}
		fmt.Printf("removed [%d,%d)\n", off, off+l)
	case "rmel":
		off, err := strconv.Atoi(rest)
		if err != nil {
			return err
		}
		if err := up.RemoveElementAt(off); err != nil {
			return err
		}
		fmt.Printf("removed element at %d\n", off)
	case "query":
		ms, err := db.Query(rest)
		if err != nil {
			return err
		}
		for i, m := range ms {
			if i == 20 {
				fmt.Printf("... %d more\n", len(ms)-20)
				break
			}
			fmt.Printf("anc [%d,%d) seg %d  desc [%d,%d) seg %d\n",
				m.AncStart, m.AncEnd, m.Anc.SID, m.DescStart, m.DescEnd, m.Desc.SID)
		}
		fmt.Printf("%d match(es)\n", len(ms))
	case "count":
		n, err := db.Count(rest)
		if err != nil {
			return err
		}
		fmt.Println(n)
	case "twig":
		ts, err := db.QueryTwig(rest)
		if err != nil {
			return err
		}
		for i, tu := range ts {
			if i == 20 {
				fmt.Printf("... %d more\n", len(ts)-20)
				break
			}
			for j, nd := range tu {
				if j > 0 {
					fmt.Print(" > ")
				}
				fmt.Printf("[%d,%d)", nd.Start, nd.End)
			}
			fmt.Println()
		}
		fmt.Printf("%d tuple(s)\n", len(ts))
	case "pattern":
		ts, err := db.QueryPattern(rest)
		if err != nil {
			return err
		}
		fmt.Printf("%d match(es)\n", len(ts))
	case "collapse":
		sid, err := strconv.Atoi(rest)
		if err != nil {
			return err
		}
		newSID, err := db.Collapse(lazyxml.SID(sid))
		if err != nil {
			return err
		}
		fmt.Printf("collapsed into segment %d; %d segment(s) total\n", newSID, db.Segments())
	case "stats":
		st := db.Stats()
		fmt.Printf("mode %v, %d bytes, %d segments, %d elements, %d tags\n",
			st.Mode, st.TextLen, st.Segments, st.Elements, st.Tags)
		fmt.Printf("update log: SB-tree %.1f KB, tag-list %.1f KB; element index %.1f KB\n",
			float64(st.SBTreeBytes)/1024, float64(st.TagListBytes)/1024, float64(st.ElemIdxBytes)/1024)
		fmt.Printf("%d insert(s), %d remove(s)\n", st.Inserts, st.Removes)
	case "segments":
		fmt.Print(db.DumpSegments())
	case "text":
		text, err := db.Text()
		if err != nil {
			return err
		}
		fmt.Println(string(text))
	case "check":
		if err := db.CheckConsistency(); err != nil {
			return err
		}
		fmt.Println("consistent")
	case "rebuild":
		if err := db.Rebuild(); err != nil {
			return err
		}
		fmt.Printf("rebuilt: %d segment(s)\n", db.Segments())
	case "save":
		if rest == "" {
			return fmt.Errorf("usage: save <file>")
		}
		if err := db.SaveFile(rest); err != nil {
			return err
		}
		fmt.Println("saved", rest)
	case "compact":
		if jdb == nil {
			return fmt.Errorf("compact requires -journal mode")
		}
		if err := jdb.Compact(); err != nil {
			return err
		}
		fmt.Println("journal compacted into snapshot")
	case "snapshot":
		if rest == "" {
			return fmt.Errorf("usage: snapshot <file>")
		}
		if err := db.SnapshotFile(rest); err != nil {
			return err
		}
		fmt.Println("snapshot written to", rest)
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
	return nil
}
