// Command benchstream measures what the streaming query path buys on a
// large scan: the same ~100k-match structural query run materialized
// (the classic Query call: the whole []Match built before the caller
// sees row one) and streamed (QueryStream: rows pulled through the
// bounded iterator pipeline), comparing
//
//   - peak live heap at the query's maximum-retention point — the
//     streamed lane holds one segment's element lists plus the batch
//     window, the materialized lane the entire result;
//   - time to first row — the streamed lane's first match arrives while
//     the join is still merging segments, the materialized lane's only
//     after it finished;
//   - total drain time, p50 and worst pass.
//
// The collection is seeded as many documents (one segment each, the
// shape the Lazy-Join merge is built for) so streaming consumes one
// segment's lists at a time. scripts/bench_stream.sh runs both lanes
// back to back and records BENCH_stream.json.
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"sort"
	"time"

	lazyxml "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchstream: ")
	var (
		rows   = flag.Int("rows", 100000, "total matches per query")
		docs   = flag.Int("docs", 100, "documents the matches spread over")
		passes = flag.Int("passes", 5, "measured passes")
		mode   = flag.String("mode", "stream", "query discipline: stream | materialize")
	)
	flag.Parse()
	if *mode != "stream" && *mode != "materialize" {
		log.Fatalf("unknown -mode %q", *mode)
	}
	if *docs < 1 || *rows < *docs {
		log.Fatalf("need at least one row per doc (rows=%d docs=%d)", *rows, *docs)
	}

	c := lazyxml.NewCollection(lazyxml.LD)
	per := *rows / *docs
	total := 0
	for d := 0; d < *docs; d++ {
		n := per
		if d == *docs-1 {
			n = *rows - total // remainder lands in the last doc
		}
		doc := make([]byte, 0, 13+8*n)
		doc = append(doc, "<load>"...)
		for i := 0; i < n; i++ {
			doc = append(doc, "<item/>"...)
		}
		doc = append(doc, "</load>"...)
		if err := c.Put(fmt.Sprintf("d-%04d", d), doc); err != nil {
			log.Fatal(err)
		}
		total += n
	}
	const path = "load//item"

	// Warm-up pass: LD's first query pays the lazy log merge; that cost
	// belongs to neither lane.
	timedPass(c, path, *mode, *rows)

	var ttfbs, drains []time.Duration
	for p := 0; p < *passes; p++ {
		ttfb, drain := timedPass(c, path, *mode, *rows)
		ttfbs = append(ttfbs, ttfb)
		drains = append(drains, drain)
	}
	peak := retentionPass(c, path, *mode, *rows)

	sort.Slice(ttfbs, func(i, j int) bool { return ttfbs[i] < ttfbs[j] })
	sort.Slice(drains, func(i, j int) bool { return drains[i] < drains[j] })
	mid := len(drains) / 2
	fmt.Printf("mode=%s rows=%d docs=%d passes=%d\n", *mode, *rows, *docs, *passes)
	fmt.Printf("  ttfb_p50_us=%d drain_p50_us=%d drain_max_us=%d peak_live_bytes=%d\n",
		ttfbs[mid].Microseconds(), drains[mid].Microseconds(),
		drains[len(drains)-1].Microseconds(), peak)
}

// timedPass runs one query and reports (time to first match, total
// drain time). The materialized lane's first match exists only once the
// whole result does, so its TTFB is its drain time.
func timedPass(c *lazyxml.Collection, path, mode string, rows int) (ttfb, drain time.Duration) {
	t0 := time.Now()
	n := 0
	if mode == "materialize" {
		ms, err := c.Query(path)
		if err != nil {
			log.Fatal(err)
		}
		ttfb = time.Since(t0)
		n = len(ms)
	} else {
		rs, err := c.QueryStream(path, lazyxml.StreamOpt{})
		if err != nil {
			log.Fatal(err)
		}
		for {
			if _, err := rs.Next(); err != nil {
				break
			}
			if n == 0 {
				ttfb = time.Since(t0)
			}
			n++
		}
		rs.Close()
	}
	drain = time.Since(t0)
	if n != rows {
		log.Fatalf("%s pass delivered %d matches, want %d", mode, n, rows)
	}
	return ttfb, drain
}

// retentionPass measures the live heap a consumer holds at the query's
// maximum-retention point: for the materialized lane, right after Query
// returns with the full result referenced; for the streamed lane,
// midway through the drain with the pipeline running. A forced GC
// before each reading separates state actually retained from
// allocation garbage.
func retentionPass(c *lazyxml.Collection, path, mode string, rows int) uint64 {
	base := liveBytes()
	var at uint64
	n := 0
	if mode == "materialize" {
		ms, err := c.Query(path)
		if err != nil {
			log.Fatal(err)
		}
		at = liveBytes()
		n = len(ms)
		runtime.KeepAlive(ms)
	} else {
		rs, err := c.QueryStream(path, lazyxml.StreamOpt{})
		if err != nil {
			log.Fatal(err)
		}
		for {
			if _, err := rs.Next(); err != nil {
				break
			}
			n++
			if n == rows/2 {
				at = liveBytes()
			}
		}
		rs.Close()
	}
	if n != rows {
		log.Fatalf("%s retention pass delivered %d matches, want %d", mode, n, rows)
	}
	// Without this the collection is dead after the last Query call and
	// the probe's forced GC collects the whole store, masking the result.
	runtime.KeepAlive(c)
	if at <= base {
		return 0
	}
	return at - base
}

func liveBytes() uint64 {
	// Twice: one cycle can leave just-unreachable spans uncounted, which
	// would let the baseline read high and mask the retained result.
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}
