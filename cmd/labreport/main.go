// Command labreport regenerates the tables and figures of the paper's
// evaluation section (Section 5) and prints them as text tables.
//
// Usage:
//
//	labreport [-fig all|11|12|13|14|15|16|17] [-scale small|paper]
//
// -scale small (the default) runs every experiment in seconds at reduced
// sizes; -scale paper uses sizes comparable to the published experiments
// (a 100 MB-class XMark store, 3M-element documents) and takes minutes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
)

type scaleCfg struct {
	fig11Segs    []int
	fig12Joins   int
	fig13Joins   int
	fig13Segs    []int
	xmarkPersons int
	xmarkItems   int
	xmarkSegs    int
	fig16Persons []int
	fig17        bench.Fig17Config
	fig17Elems   []int
	fig17Tags    []int
	fig17Segs    []int
}

func scales(name string) (scaleCfg, error) {
	switch name {
	case "small":
		return scaleCfg{
			fig11Segs:    []int{50, 100, 200, 300},
			fig12Joins:   20_000,
			fig13Joins:   40_000,
			fig13Segs:    []int{20, 60, 120, 180, 240, 300},
			xmarkPersons: 1000,
			xmarkItems:   200,
			xmarkSegs:    100,
			fig16Persons: []int{100, 400, 1600, 6400},
			fig17:        bench.Fig17Config{BaseSegments: 100, BaseElements: 20_000, PrimeKs: []int{10, 100}},
			fig17Elems:   []int{16, 64, 256, 1024},
			fig17Tags:    []int{2, 8, 32, 128},
			fig17Segs:    []int{100, 400, 1600, 6400},
		}, nil
	case "paper":
		return scaleCfg{
			fig11Segs:    []int{50, 100, 200, 300},
			fig12Joins:   200_000,
			fig13Joins:   120_000, // the paper's 120k-element document
			fig13Segs:    []int{20, 60, 120, 180, 240, 300},
			xmarkPersons: 60_000, // ~3M elements, ~100MB-class store
			xmarkItems:   12_000,
			xmarkSegs:    100,
			fig16Persons: []int{1000, 4000, 16_000, 64_000},
			fig17:        bench.Fig17Config{BaseSegments: 100, BaseElements: 100_000, PrimeKs: []int{10, 100}},
			fig17Elems:   []int{16, 64, 256, 1024, 4096},
			fig17Tags:    []int{2, 8, 32, 128, 512},
			fig17Segs:    []int{100, 400, 1600, 6400, 12800},
		}, nil
	default:
		return scaleCfg{}, fmt.Errorf("unknown scale %q (want small or paper)", name)
	}
}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: all, 11, 12, 13, 14, 15, 16, 17, ablations or extras")
	scale := flag.String("scale", "small", "experiment scale: small or paper")
	flag.Parse()

	cfg, err := scales(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "labreport:", err)
		os.Exit(2)
	}
	if err := report(os.Stdout, *fig, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "labreport:", err)
		os.Exit(2)
	}
}

// report writes the requested figure(s) at the given scale.
func report(w io.Writer, fig string, cfg scaleCfg) error {
	want := func(f string) bool { return fig == "all" || fig == f }
	ran := false

	if want("11") {
		ran = true
		fmt.Fprintln(w, bench.Fig11(cfg.fig11Segs, 20))
	}
	if want("12") {
		ran = true
		pcts := []float64{0, 20, 40, 60, 80, 100}
		for _, shape := range []bench.Shape{bench.Nested, bench.Balanced} {
			for _, n := range []int{50, 100} {
				fmt.Fprintln(w, bench.Fig12(shape, n, cfg.fig12Joins, pcts))
			}
		}
	}
	if want("13") {
		ran = true
		for _, shape := range []bench.Shape{bench.Nested, bench.Balanced} {
			fmt.Fprintln(w, bench.Fig13(shape, cfg.fig13Segs, cfg.fig13Joins))
		}
	}
	if want("14") {
		ran = true
		fmt.Fprintln(w, bench.Fig14(cfg.xmarkPersons, cfg.xmarkItems, cfg.xmarkSegs))
	}
	if want("15") {
		ran = true
		fmt.Fprintln(w, bench.Fig15(cfg.xmarkPersons, cfg.xmarkItems, cfg.xmarkSegs))
	}
	if want("16") {
		ran = true
		fmt.Fprintln(w, bench.Fig16(cfg.fig16Persons))
	}
	if want("17") {
		ran = true
		fmt.Fprintln(w, bench.Fig17Elements(cfg.fig17Elems, cfg.fig17))
		fmt.Fprintln(w, bench.Fig17Tags(cfg.fig17Tags, cfg.fig17))
		fmt.Fprintln(w, bench.Fig17Segments(cfg.fig17Segs, cfg.fig17))
	}
	if want("ablations") {
		ran = true
		fmt.Fprintln(w, bench.FigAblations())
	}
	if want("extras") {
		ran = true
		fmt.Fprintln(w, bench.FigExtras())
	}
	if !ran {
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}
