package main

import (
	"strings"
	"testing"

	"repro/internal/bench"
)

// tinyCfg keeps every experiment in the millisecond range for tests.
func tinyCfg() scaleCfg {
	return scaleCfg{
		fig11Segs:    []int{5, 10},
		fig12Joins:   200,
		fig13Joins:   200,
		fig13Segs:    []int{5, 10},
		xmarkPersons: 10,
		xmarkItems:   3,
		xmarkSegs:    5,
		fig16Persons: []int{10},
		fig17:        bench.Fig17Config{BaseSegments: 5, BaseElements: 300, PrimeKs: []int{3}},
		fig17Elems:   []int{8},
		fig17Tags:    []int{2},
		fig17Segs:    []int{5},
	}
}

func TestReportAllFiguresAtTinyScale(t *testing.T) {
	var sb strings.Builder
	if err := report(&sb, "all", tinyCfg()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Figure 11", "Figure 12", "Figure 13", "Figure 14",
		"Figure 15", "Figure 16", "Figure 17(a)", "Figure 17(b)", "Figure 17(c)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestReportSingleFigure(t *testing.T) {
	var sb strings.Builder
	if err := report(&sb, "14", tinyCfg()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 14") || strings.Contains(sb.String(), "Figure 15") {
		t.Fatalf("wrong figure selection: %s", sb.String())
	}
	if err := report(&sb, "99", tinyCfg()); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestScales(t *testing.T) {
	for _, name := range []string{"small", "paper"} {
		cfg, err := scales(name)
		if err != nil {
			t.Fatalf("scales(%q): %v", name, err)
		}
		if len(cfg.fig11Segs) == 0 || len(cfg.fig13Segs) == 0 || len(cfg.fig16Persons) == 0 {
			t.Fatalf("scales(%q) missing sweeps: %+v", name, cfg)
		}
		if cfg.xmarkPersons <= 0 || cfg.xmarkSegs <= 0 {
			t.Fatalf("scales(%q) bad xmark config", name)
		}
		if len(cfg.fig17.PrimeKs) == 0 {
			t.Fatalf("scales(%q) missing PRIME K values", name)
		}
	}
	if _, err := scales("bogus"); err == nil {
		t.Fatal("scales(bogus) succeeded")
	}
	// Paper scale must be strictly larger than small scale.
	small, _ := scales("small")
	paper, _ := scales("paper")
	if paper.xmarkPersons <= small.xmarkPersons || paper.fig12Joins <= small.fig12Joins {
		t.Fatal("paper scale not larger than small scale")
	}
}
