// Command benchingest measures the write-path ingest ceiling at equal
// durability. It runs concurrent writers against one durable sharded
// collection for a fixed duration — every op is acknowledged only after
// its WAL record is fsynced — and reports sustained writes/s plus
// per-op latency percentiles.
//
// Two commit disciplines are compared:
//
//   - peropfsync (the pre-group-commit discipline): every op pays its
//     own WAL append and its own fsync before returning, so the ingest
//     rate is capped near the device's sync rate regardless of writer
//     count.
//   - group (the engine's commit lane): concurrent writers enqueue at
//     the shard's lane, one leader drains the queue and retires the
//     whole batch with a single WAL write and a single fsync, then
//     wakes every waiter. Same durability guarantee — no caller
//     observes success before its record is on disk — amortised over
//     the batch.
//
// scripts/bench_ingest.sh runs the lanes back to back and records
// BENCH_ingest.json.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	lazyxml "repro"
)

// frag builds one insert payload: a small indexed element plus pad
// bytes of inert text, enough to look like a real record without making
// encode time the bottleneck.
func frag(n, pad int) []byte {
	return []byte(fmt.Sprintf("<e><k>%04d</k><v>%s</v></e>",
		n%10000, strings.Repeat("x", pad)))
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchingest: ")
	var (
		shards   = flag.Int("shards", 4, "shard count (commit lanes)")
		writers  = flag.Int("c", 32, "concurrent writers")
		duration = flag.Duration("d", 3*time.Second, "measurement duration")
		mode     = flag.String("mode", "group", "commit discipline: peropfsync | group")
		window   = flag.Duration("window", 0, "group-commit window (group mode only)")
		pad      = flag.Int("pad", 64, "inert text bytes per fragment")
	)
	flag.Parse()
	if *mode != "peropfsync" && *mode != "group" {
		log.Fatalf("unknown -mode %q", *mode)
	}

	dir, err := os.MkdirTemp("", "benchingest-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	jOpts := []lazyxml.JournalOption{lazyxml.WithSync()}
	if *mode == "group" {
		jOpts = append(jOpts, lazyxml.WithGroupCommit(*window))
	}
	sc, err := lazyxml.OpenShardedCollection(dir, *shards, lazyxml.LD, nil, jOpts...)
	if err != nil {
		log.Fatal(err)
	}
	defer sc.Close()

	// Each op ingests one fresh small document — constant per-op work
	// (parse, index, WAL record) in both modes, so the throughput gap
	// is pure commit-path overhead: one fsync per op versus one fsync
	// per batch.
	lats := make([][]time.Duration, *writers)
	var wg sync.WaitGroup
	deadline := time.Now().Add(*duration)
	for w := 0; w < *writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; time.Now().Before(deadline); n++ {
				text := append(append([]byte("<d>"), frag(n, *pad)...), "</d>"...)
				start := time.Now()
				if err := sc.Put(fmt.Sprintf("w-%d-%d", w, n), text); err != nil {
					log.Fatal(err)
				}
				lats[w] = append(lats[w], time.Since(start))
			}
		}()
	}
	wg.Wait()

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		log.Fatal("no writes completed")
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p int) time.Duration { return all[len(all)*p/100] }

	var batches, laneOps, maxBatch int64
	for _, l := range sc.CommitLaneStats() {
		batches += l.Batches
		laneOps += l.Ops
		if l.MaxBatch > maxBatch {
			maxBatch = l.MaxBatch
		}
	}
	fmt.Printf("mode=%s shards=%d writers=%d pad=%d duration=%v\n",
		*mode, *shards, *writers, *pad, *duration)
	fmt.Printf("  writes  n=%d wps=%.0f p50=%v p95=%v p99=%v max=%v batches=%d laneops=%d maxbatch=%d\n",
		len(all), float64(len(all))/duration.Seconds(),
		pct(50), pct(95), pct(99), all[len(all)-1], batches, laneOps, maxBatch)
}
