// Command lazyload drives a running lazyxmld with a concurrent mixed
// workload and reports throughput and latency percentiles — the quick
// way to see the paper's claim hold over the network: updates stay
// cheap while queries keep running.
//
// Each worker owns one document and issues a read/write mix against it:
// writes insert a small fragment right after the document's root open
// tag (always a valid segment insertion), reads run a document-scoped
// structural count. A final whole-collection query and /stats round off
// the run.
//
// Usage:
//
//	lazyload [-url http://localhost:8080] [-c 8] [-n 2000] [-read 0.8]
//	         [-prefix load] [-keep]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

func main() {
	url := flag.String("url", "http://localhost:8080", "base URL of a running lazyxmld")
	workers := flag.Int("c", 8, "concurrent workers (one document each)")
	total := flag.Int("n", 2000, "total operations across all workers")
	readFrac := flag.Float64("read", 0.8, "fraction of operations that are queries")
	prefix := flag.String("prefix", "load", "document name prefix")
	keep := flag.Bool("keep", false, "leave the documents on the server after the run")
	flag.Parse()

	client := &http.Client{Timeout: 30 * time.Second}

	// One document per worker; recreate from scratch.
	for w := 0; w < *workers; w++ {
		name := fmt.Sprintf("%s-%d", *prefix, w)
		do(client, "DELETE", *url+"/docs/"+name, nil) // ignore 404
		status, body := do(client, "PUT", *url+"/docs/"+name, []byte("<load></load>"))
		if status != http.StatusCreated {
			log.Fatalf("lazyload: PUT %s: %d %s", name, status, body)
		}
	}

	type sample struct {
		read bool
		d    time.Duration
		err  bool
	}
	perWorker := *total / *workers
	samples := make([][]sample, *workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			name := fmt.Sprintf("%s-%d", *prefix, w)
			samples[w] = make([]sample, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				read := rng.Float64() < *readFrac
				t0 := time.Now()
				var status int
				if read {
					status, _ = do(client, "GET", *url+"/docs/"+name+"/count?path=load//item", nil)
				} else {
					frag := fmt.Sprintf("<item w=\"%d\" n=\"%d\"/>", w, i)
					// "<load>" is 6 bytes: inserting there keeps the
					// document well-formed forever.
					status, _ = do(client, "POST", *url+"/docs/"+name+"/insert?off=6", []byte(frag))
				}
				samples[w] = append(samples[w], sample{read: read, d: time.Since(t0), err: status >= 400})
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var reads, writes, errs int
	var readLat, writeLat []time.Duration
	for _, ss := range samples {
		for _, s := range ss {
			if s.err {
				errs++
			}
			if s.read {
				reads++
				readLat = append(readLat, s.d)
			} else {
				writes++
				writeLat = append(writeLat, s.d)
			}
		}
	}
	ops := reads + writes
	fmt.Printf("lazyload: %d ops (%d reads, %d writes, %d errors) in %s — %.0f ops/s\n",
		ops, reads, writes, errs, elapsed.Round(time.Millisecond), float64(ops)/elapsed.Seconds())
	report("reads ", readLat)
	report("writes", writeLat)

	status, body := do(client, "GET", *url+"/count?path=load//item", nil)
	fmt.Printf("collection count: %d %s", status, body)
	status, body = do(client, "GET", *url+"/stats", nil)
	fmt.Printf("stats: %d %s", status, body)

	if !*keep {
		for w := 0; w < *workers; w++ {
			do(client, "DELETE", *url+"/docs/"+fmt.Sprintf("%s-%d", *prefix, w), nil)
		}
	}
	if errs > 0 {
		os.Exit(1)
	}
}

func report(label string, lat []time.Duration) {
	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(f float64) time.Duration { return lat[int(f*float64(len(lat)-1))] }
	fmt.Printf("  %s p50=%s p95=%s p99=%s max=%s\n", label,
		q(0.50).Round(time.Microsecond), q(0.95).Round(time.Microsecond),
		q(0.99).Round(time.Microsecond), lat[len(lat)-1].Round(time.Microsecond))
}

func do(client *http.Client, method, url string, body []byte) (int, string) {
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		log.Fatalf("lazyload: %v", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		log.Fatalf("lazyload: %s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}
