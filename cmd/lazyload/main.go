// Command lazyload drives a running lazyxmld with a concurrent mixed
// workload and reports throughput and latency percentiles — the quick
// way to see the paper's claim hold over the network: updates stay
// cheap while queries keep running.
//
// Each worker owns one document and issues a read/write mix against it:
// writes insert a small fragment right after the document's root open
// tag (always a valid segment insertion), reads run a document-scoped
// structural count. A final whole-collection query and /stats round off
// the run.
//
// The driver is shard-aware: it asks /stats for the server's shard
// count and, when the server is sharded, picks document names that
// spread evenly across shards (mirroring the engine's FNV-1a routing),
// so the load exercises every writer lane instead of hot-spotting one.
//
// By default the client keeps connections alive with an idle pool at
// least as large as the worker count, so the numbers measure engine
// latency rather than TCP setup; -reuse=false disables keep-alives to
// measure the connection-churn regime instead.
//
// Bulk mode (-bulk) measures document ingest instead of the mixed
// workload: it loads -n fresh documents of roughly -doc-bytes each,
// either over HTTP PUTs (the default) or over the binary replication
// protocol (-bin addr, the primary's -repl listener), where PUT frames
// pipeline -window deep on one connection instead of paying a round
// trip per document. scripts/bench_repl.sh runs both lanes back to
// back.
//
// Query-mix mode (-query-mix) measures the read path under a skewed
// query population — the workload the planner's result cache is built
// for. Each document is seeded with -query-paths tag groups; reads pick
// a path by a zipf law (-zipf-s), so a few paths are hot and most are
// cold, and the remaining (1 - -read) fraction are inserts that
// invalidate the written shard's cache entries by generation bump.
// -algo appends ?algo= to every query for planned-vs-fixed A/B runs;
// the summary prints latency percentiles plus the server's cache hit
// ratio and per-algorithm picks. scripts/bench_plan.sh runs the lanes
// back to back and records BENCH_plan.json.
//
// Stream mode (-stream) measures the streaming read path: one document
// seeded with -n matches, then -c passes per lane, each reporting
// time-to-first-row and drain rate. The HTTP lane reads ?stream=1
// NDJSON; adding -bin runs the same passes over the binary QUERY lane
// (protocol v3) on the primary's -repl listener.
// scripts/bench_stream.sh runs streamed vs materialized back to back.
//
// Usage:
//
//	lazyload [-url http://localhost:8080] [-c 8] [-n 2000] [-read 0.8]
//	         [-prefix load] [-reuse] [-keep] [-retries 4] [-peers url,url,...]
//	         [-bulk] [-bin addr] [-doc-bytes 4096] [-window 64]
//	         [-query-mix] [-query-paths 64] [-zipf-s 1.2] [-algo name]
//	         [-stream]
//
// Requests refused with 503 (the server's overload shedding) or lost to
// a transport error are retried up to -retries times with a jittered
// exponential backoff; a Retry-After header from the server overrides
// the local backoff base. The summary reports the retry count.
//
// Failover (-peers): given the cluster members' HTTP base URLs, the
// driver rides through a primary failover. A connection refused, or a
// 403 naming the primary (the follower's answer to a write after this
// node was demoted or the driver was pointed at a replica), triggers a
// re-resolve: the peers' /readyz are polled for whoever now reports
// role=primary and every later request is rewritten onto that base URL.
// Re-resolves count against -retries and share the jittered backoff, so
// a cluster mid-election is retried, not hammered.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/repl"
)

func main() {
	url := flag.String("url", "http://localhost:8080", "base URL of a running lazyxmld")
	workers := flag.Int("c", 8, "concurrent workers (one document each)")
	total := flag.Int("n", 2000, "total operations across all workers")
	readFrac := flag.Float64("read", 0.8, "fraction of operations that are queries")
	prefix := flag.String("prefix", "load", "document name prefix")
	reuse := flag.Bool("reuse", true, "persistent client: keep-alive connections, idle pool >= -c (false: new TCP connection per request)")
	keep := flag.Bool("keep", false, "leave the documents on the server after the run")
	bulk := flag.Bool("bulk", false, "bulk-ingest mode: load -n fresh documents and report docs/s + MB/s")
	binAddr := flag.String("bin", "", "bulk over the binary protocol at this address (the primary's -repl listener; empty: HTTP PUTs)")
	docBytes := flag.Int("doc-bytes", 4096, "approximate size of each bulk document")
	window := flag.Int("window", 64, "binary bulk pipelining depth (puts in flight before blocking on acks)")
	retriesFlag := flag.Int("retries", 4, "max retries per request on 503/transport failure (jittered backoff, honors Retry-After)")
	queryMix := flag.Bool("query-mix", false, "query-mix mode: zipf-skewed structural queries with a write fraction (the planner/cache workload)")
	stream := flag.Bool("stream", false, "stream mode: repeated streaming queries over one large result, reporting time-to-first-row and rows/s (HTTP ?stream=1; add -bin for the binary QUERY lane)")
	queryPaths := flag.Int("query-paths", 64, "query-mix: distinct query paths (one tag group each)")
	zipfS := flag.Float64("zipf-s", 1.2, "query-mix: zipf skew of path popularity (> 1; higher = hotter head)")
	algo := flag.String("algo", "", "query-mix: force this join algorithm on every query via ?algo= (empty: server default)")
	peersFlag := flag.String("peers", "", "comma-separated HTTP base URLs of all cluster members: on connection refused or a 403 naming the primary, re-resolve the writable primary and fail over")
	flag.Parse()
	maxRetries = *retriesFlag
	if *peersFlag != "" {
		base := strings.TrimSuffix(*url, "/")
		fo = &failover{orig: base, base: base}
		for _, p := range strings.Split(*peersFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				fo.peers = append(fo.peers, strings.TrimSuffix(p, "/"))
			}
		}
	}

	// The transport is sized so every worker can hold a warm connection:
	// with the default MaxIdleConnsPerHost of 2, workers beyond the
	// second would re-dial constantly and the tail latencies would be
	// TCP setup, not engine time.
	pool := *workers + 2
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        pool,
			MaxIdleConnsPerHost: pool,
			IdleConnTimeout:     90 * time.Second,
			DisableKeepAlives:   !*reuse,
		},
	}

	if *bulk {
		runBulk(client, *url, *binAddr, *prefix, *total, *docBytes, *window, *workers, *keep)
		return
	}
	if *queryMix {
		runQueryMix(client, *url, *prefix, *algo, *workers, *total, *queryPaths, *readFrac, *zipfS, *keep)
		return
	}
	if *stream {
		runStream(client, *url, *binAddr, *prefix, *total, *workers, *keep)
		return
	}

	shardCount := serverShardCount(client, *url)
	mode := "keep-alive"
	if !*reuse {
		mode = "no-reuse"
	}
	fmt.Printf("lazyload: %d workers, %d ops, %.0f%% reads, %s, server shards=%d\n",
		*workers, *total, *readFrac*100, mode, shardCount)

	// One document per worker; recreate from scratch. When the server is
	// sharded, worker w's document is named so it routes to shard w mod
	// shardCount — an even spread across every writer lane.
	names := make([]string, *workers)
	for w := 0; w < *workers; w++ {
		names[w] = docName(*prefix, w, shardCount)
		do(client, "DELETE", *url+"/docs/"+names[w], nil) // ignore 404
		status, body := doRetry(client, "PUT", *url+"/docs/"+names[w], []byte("<load></load>"))
		if status != http.StatusCreated {
			log.Fatalf("lazyload: PUT %s: %d %s", names[w], status, body)
		}
	}

	type sample struct {
		read bool
		d    time.Duration
		err  bool
	}
	perWorker := *total / *workers
	samples := make([][]sample, *workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			name := names[w]
			samples[w] = make([]sample, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				read := rng.Float64() < *readFrac
				t0 := time.Now()
				var status int
				if read {
					status, _ = doRetry(client, "GET", *url+"/docs/"+name+"/count?path=load//item", nil)
				} else {
					frag := fmt.Sprintf("<item w=\"%d\" n=\"%d\"/>", w, i)
					// "<load>" is 6 bytes: inserting there keeps the
					// document well-formed forever.
					status, _ = doRetry(client, "POST", *url+"/docs/"+name+"/insert?off=6", []byte(frag))
				}
				samples[w] = append(samples[w], sample{read: read, d: time.Since(t0), err: status >= 400 || status == 0})
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var reads, writes, errs int
	var readLat, writeLat []time.Duration
	for _, ss := range samples {
		for _, s := range ss {
			if s.err {
				errs++
			}
			if s.read {
				reads++
				readLat = append(readLat, s.d)
			} else {
				writes++
				writeLat = append(writeLat, s.d)
			}
		}
	}
	ops := reads + writes
	fmt.Printf("lazyload: %d ops (%d reads, %d writes, %d errors, %d retries) in %s — %.0f ops/s (writes %.0f/s)\n",
		ops, reads, writes, errs, retries.Load(), elapsed.Round(time.Millisecond),
		float64(ops)/elapsed.Seconds(), float64(writes)/elapsed.Seconds())
	report("reads ", readLat)
	report("writes", writeLat)

	status, body, _ := do(client, "GET", rebase(*url)+"/count?path=load//item", nil)
	fmt.Printf("collection count: %d %s", status, body)
	reportShardSpread(client, rebase(*url))

	if !*keep {
		for w := 0; w < *workers; w++ {
			do(client, "DELETE", rebase(*url)+"/docs/"+names[w], nil)
		}
	}
	if errs > 0 {
		os.Exit(1)
	}
}

// runBulk loads n fresh documents of ~docBytes each and reports ingest
// throughput. Over HTTP it uses c concurrent workers issuing PUTs; over
// the binary protocol it uses one connection with pipelined PUT frames
// — the comparison scripts/bench_repl.sh prints.
func runBulk(client *http.Client, base, binAddr, prefix string, n, docBytes, window, c int, keep bool) {
	doc := makeBulkDoc(docBytes)
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("%s-bulk-%06d", prefix, i)
	}

	lane := "http"
	start := time.Now()
	if binAddr != "" {
		lane = fmt.Sprintf("binary window=%d", window)
		bc, err := repl.DialBulk(binAddr, 10*time.Second, window)
		if err != nil {
			log.Fatalf("lazyload: dialing %s: %v", binAddr, err)
		}
		for _, name := range names {
			if err := bc.Put(name, doc); err != nil {
				log.Fatalf("lazyload: bulk put %s: %v", name, err)
			}
		}
		if err := bc.Close(); err != nil {
			log.Fatalf("lazyload: bulk flush: %v", err)
		}
	} else {
		var wg sync.WaitGroup
		errs := make([]error, c)
		for w := 0; w < c; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < n; i += c {
					status, body := doRetry(client, "PUT", base+"/docs/"+names[i], doc)
					if status != http.StatusCreated {
						errs[w] = fmt.Errorf("PUT %s: %d %s", names[i], status, strings.TrimSpace(body))
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				log.Fatalf("lazyload: bulk: %v", err)
			}
		}
	}
	elapsed := time.Since(start)
	mb := float64(n*len(doc)) / (1 << 20)
	fmt.Printf("lazyload bulk [%s]: %d docs × %dB in %s — %.0f docs/s, %.1f MB/s (%d retries)\n",
		lane, n, len(doc), elapsed.Round(time.Millisecond),
		float64(n)/elapsed.Seconds(), mb/elapsed.Seconds(), retries.Load())

	if !keep {
		for _, name := range names {
			do(client, "DELETE", base+"/docs/"+name, nil)
		}
	}
}

// runQueryMix drives the zipf-skewed query workload the planner's
// result cache is built for. Each worker owns one document seeded with
// every tag group g0..g{paths-1}, so a read — GET /query over
// load//g<k>//item — is a genuine collection-wide structural join; k is
// drawn from a zipf law so a few paths dominate. Writes insert a fresh
// group subtree right after the root open tag, bumping the written
// shard's generation and invalidating exactly that shard's cache
// entries. The summary adds the server's cache hit ratio and planner
// picks to the usual latency percentiles.
func runQueryMix(client *http.Client, base, prefix, algo string, c, n, paths int, readFrac, zipfS float64, keep bool) {
	if paths < 1 {
		log.Fatal("lazyload: -query-paths must be >= 1")
	}
	if zipfS <= 1 {
		log.Fatal("lazyload: -zipf-s must be > 1")
	}
	shardCount := serverShardCount(client, base)
	lane := "server default"
	if algo != "" {
		lane = "algo=" + algo
	}
	fmt.Printf("lazyload query-mix [%s]: %d workers, %d ops, %.0f%% reads, %d paths, zipf s=%.2f, server shards=%d\n",
		lane, c, n, readFrac*100, paths, zipfS, shardCount)

	var seed bytes.Buffer
	seed.WriteString("<load>")
	for k := 0; k < paths; k++ {
		fmt.Fprintf(&seed, "<g%d><item/><item/></g%d>", k, k)
	}
	seed.WriteString("</load>")
	names := make([]string, c)
	for w := 0; w < c; w++ {
		names[w] = docName(prefix+"-qm", w, shardCount)
		do(client, "DELETE", base+"/docs/"+names[w], nil) // ignore 404
		status, body := doRetry(client, "PUT", base+"/docs/"+names[w], seed.Bytes())
		if status != http.StatusCreated {
			log.Fatalf("lazyload: PUT %s: %d %s", names[w], status, body)
		}
	}

	type sample struct {
		read bool
		d    time.Duration
		err  bool
	}
	perWorker := n / c
	samples := make([][]sample, c)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
			zipf := rand.NewZipf(rng, zipfS, 1, uint64(paths-1))
			name := names[w]
			samples[w] = make([]sample, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				k := int(zipf.Uint64())
				read := rng.Float64() < readFrac
				t0 := time.Now()
				var status int
				if read {
					u := fmt.Sprintf("%s/query?path=load//g%d//item", base, k)
					if algo != "" {
						u += "&algo=" + algo
					}
					status, _ = doRetry(client, "GET", u, nil)
				} else {
					// "<load>" is 6 bytes: a fresh group subtree there keeps
					// the document well-formed and adds a match for path k.
					frag := fmt.Sprintf("<g%d><item w=\"%d\" n=\"%d\"/></g%d>", k, w, i, k)
					status, _ = doRetry(client, "POST", base+"/docs/"+name+"/insert?off=6", []byte(frag))
				}
				samples[w] = append(samples[w], sample{read: read, d: time.Since(t0), err: status >= 400 || status == 0})
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var reads, writes, errs int
	var readLat, writeLat []time.Duration
	for _, ss := range samples {
		for _, s := range ss {
			if s.err {
				errs++
			}
			if s.read {
				reads++
				readLat = append(readLat, s.d)
			} else {
				writes++
				writeLat = append(writeLat, s.d)
			}
		}
	}
	ops := reads + writes
	fmt.Printf("lazyload query-mix: %d ops (%d reads, %d writes, %d errors, %d retries) in %s — %.0f ops/s\n",
		ops, reads, writes, errs, retries.Load(), elapsed.Round(time.Millisecond),
		float64(ops)/elapsed.Seconds())
	report("reads ", readLat)
	report("writes", writeLat)
	reportPlanner(client, rebase(base))

	if !keep {
		for w := 0; w < c; w++ {
			do(client, "DELETE", rebase(base)+"/docs/"+names[w], nil)
		}
	}
	if errs > 0 {
		os.Exit(1)
	}
}

// runStream measures the streaming read path: one document seeded with
// rows matches, then passes streaming queries per lane, each timed for
// TTFB (request sent → first row decoded, the number materialization
// inflates by the whole execution time) and drain rate. The HTTP lane
// reads ?stream=1 NDJSON; with -bin the binary QUERY lane runs the same
// passes over one framed TCP connection. scripts/bench_stream.sh parses
// the key=value summary lines into BENCH_stream.json.
func runStream(client *http.Client, base, binAddr, prefix string, rows, passes int, keep bool) {
	if passes < 1 {
		passes = 1
	}
	name := prefix + "-stream"
	var b bytes.Buffer
	b.WriteString("<load>")
	for i := 0; i < rows; i++ {
		b.WriteString("<item/>")
	}
	b.WriteString("</load>")
	do(client, "DELETE", base+"/docs/"+name, nil) // ignore 404
	if status, body := doRetry(client, "PUT", base+"/docs/"+name, b.Bytes()); status != http.StatusCreated {
		log.Fatalf("lazyload: PUT %s: %d %s", name, status, body)
	}
	defer func() {
		if !keep {
			do(client, "DELETE", base+"/docs/"+name, nil)
		}
	}()
	path := "load//item"
	fmt.Printf("lazyload stream: %d rows per query, %d passes per lane\n", rows, passes)

	streamReport := func(lane string, ttfb []time.Duration, totalRows int, elapsed time.Duration) {
		sort.Slice(ttfb, func(i, j int) bool { return ttfb[i] < ttfb[j] })
		q := func(f float64) time.Duration { return ttfb[int(f*float64(len(ttfb)-1))] }
		fmt.Printf("stream lane=%s rows_per_s=%.0f ttfb_p50_us=%d ttfb_p95_us=%d rows=%d elapsed_ms=%d\n",
			lane, float64(totalRows)/elapsed.Seconds(),
			q(0.50).Microseconds(), q(0.95).Microseconds(), totalRows, elapsed.Milliseconds())
	}

	// HTTP lane: chunked NDJSON via ?stream=1.
	ttfb := make([]time.Duration, 0, passes)
	total := 0
	start := time.Now()
	for p := 0; p < passes; p++ {
		t0 := time.Now()
		resp, err := client.Get(base + "/query?path=" + path + "&stream=1")
		if err != nil {
			log.Fatalf("lazyload: stream query: %v", err)
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		first := true
		count := 0
		for sc.Scan() {
			line := sc.Bytes()
			if bytes.Contains(line, []byte(`"stream"`)) {
				continue // header
			}
			if bytes.Contains(line, []byte(`"done"`)) || bytes.Contains(line, []byte(`"error"`)) {
				break
			}
			if first {
				ttfb = append(ttfb, time.Since(t0))
				first = false
			}
			count++
		}
		resp.Body.Close()
		if err := sc.Err(); err != nil {
			log.Fatalf("lazyload: reading stream: %v", err)
		}
		if count != rows {
			log.Fatalf("lazyload: stream pass %d delivered %d rows, want %d", p, count, rows)
		}
		total += count
	}
	streamReport("http", ttfb, total, time.Since(start))

	if binAddr == "" {
		return
	}
	// Binary lane: QUERY/ROW frames on one connection, passes in sequence.
	qc, err := repl.DialQuery(binAddr, 10*time.Second)
	if err != nil {
		log.Fatalf("lazyload: dialing %s: %v", binAddr, err)
	}
	defer qc.Close()
	ttfb = make([]time.Duration, 0, passes)
	total = 0
	start = time.Now()
	for p := 0; p < passes; p++ {
		t0 := time.Now()
		rowsIt, err := qc.Query("", path, 0, 0)
		if err != nil {
			log.Fatalf("lazyload: binary query: %v", err)
		}
		first := true
		count := 0
		for {
			_, err := rowsIt.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				log.Fatalf("lazyload: binary stream: %v", err)
			}
			if first {
				ttfb = append(ttfb, time.Since(t0))
				first = false
			}
			count++
		}
		if count != rows {
			log.Fatalf("lazyload: binary pass %d delivered %d rows, want %d", p, count, rows)
		}
		total += count
	}
	streamReport("binary", ttfb, total, time.Since(start))
}

// reportPlanner prints the server's result-cache counters and planner
// picks from /stats — the hit ratio is the headline number of a
// query-mix run. The key=value form is what scripts/bench_plan.sh
// parses into BENCH_plan.json.
func reportPlanner(client *http.Client, base string) {
	status, body, _ := do(client, "GET", base+"/stats", nil)
	if status != http.StatusOK {
		fmt.Printf("stats: %d %s", status, body)
		return
	}
	var st statsBody
	if err := json.Unmarshal([]byte(body), &st); err != nil || st.Planner == nil {
		fmt.Println("planner: server runs without -plan (no cache counters)")
		return
	}
	cs := st.Planner.Cache
	lookups := cs.Hits + cs.Misses
	ratio := 0.0
	if lookups > 0 {
		ratio = float64(cs.Hits) / float64(lookups)
	}
	fmt.Printf("planner cache: hits=%d misses=%d hit_ratio=%.3f entries=%d bytes=%d evictions=%d\n",
		cs.Hits, cs.Misses, ratio, cs.Entries, cs.Bytes, cs.Evictions)
	if len(st.Planner.Picks) > 0 {
		keys := make([]string, 0, len(st.Planner.Picks))
		for k := range st.Planner.Picks {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Printf("planner picks:")
		for _, k := range keys {
			fmt.Printf(" %s=%d", k, st.Planner.Picks[k])
		}
		fmt.Println()
	}
}

// makeBulkDoc builds a well-formed document of roughly size bytes.
func makeBulkDoc(size int) []byte {
	var b bytes.Buffer
	b.WriteString("<bulk>")
	for i := 0; b.Len() < size-len("</bulk>"); i++ {
		fmt.Fprintf(&b, "<item n=\"%d\">payload</item>", i)
	}
	b.WriteString("</bulk>")
	return b.Bytes()
}

// statsBody is the slice of GET /stats the driver reads.
type statsBody struct {
	ShardCount int `json:"shardCount"`
	Shards     []struct {
		Shard          int `json:"shard"`
		Docs           int `json:"docs"`
		Inserts        int `json:"inserts"`
		UpdateLogBytes int `json:"updateLogBytes"`
	} `json:"shards"`
	Planner *struct {
		Cache struct {
			Hits      int64 `json:"hits"`
			Misses    int64 `json:"misses"`
			Entries   int   `json:"entries"`
			Bytes     int64 `json:"bytes"`
			Evictions int64 `json:"evictions"`
		} `json:"cache"`
		Picks map[string]int64 `json:"picks"`
	} `json:"planner"`
}

// serverShardCount asks /stats how many shards the server runs; servers
// without a shard dimension count as one.
func serverShardCount(client *http.Client, base string) int {
	status, body := doRetry(client, "GET", base+"/stats", nil)
	if status != http.StatusOK {
		log.Fatalf("lazyload: GET /stats: %d %s", status, body)
	}
	var st statsBody
	if err := json.Unmarshal([]byte(body), &st); err != nil || st.ShardCount < 1 {
		return 1
	}
	return st.ShardCount
}

// docName picks worker w's document name. Against a sharded server it
// appends a probe suffix until the name hashes (FNV-1a, the engine's
// routing rule) to shard w mod shards, so the workers cover every shard
// evenly.
func docName(prefix string, w, shards int) string {
	base := fmt.Sprintf("%s-%d", prefix, w)
	if shards <= 1 {
		return base
	}
	want := uint32(w % shards)
	for k := 0; ; k++ {
		name := base
		if k > 0 {
			name = fmt.Sprintf("%s-%d", base, k)
		}
		h := fnv.New32a()
		h.Write([]byte(name))
		if h.Sum32()%uint32(shards) == want {
			return name
		}
	}
}

// reportShardSpread prints the per-shard document and insert counts from
// /stats, the visible proof the load hit every shard.
func reportShardSpread(client *http.Client, base string) {
	status, body, _ := do(client, "GET", base+"/stats", nil)
	if status != http.StatusOK {
		fmt.Printf("stats: %d %s", status, body)
		return
	}
	var st statsBody
	if err := json.Unmarshal([]byte(body), &st); err != nil || len(st.Shards) == 0 {
		fmt.Printf("stats: %d %s", status, body)
		return
	}
	fmt.Printf("shard spread (%d shards):", st.ShardCount)
	for _, s := range st.Shards {
		fmt.Printf(" [%d: %d docs, %d inserts, %dB log]", s.Shard, s.Docs, s.Inserts, s.UpdateLogBytes)
	}
	fmt.Println()
}

func report(label string, lat []time.Duration) {
	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(f float64) time.Duration { return lat[int(f*float64(len(lat)-1))] }
	fmt.Printf("  %s p50=%s p95=%s p99=%s max=%s\n", label,
		q(0.50).Round(time.Microsecond), q(0.95).Round(time.Microsecond),
		q(0.99).Round(time.Microsecond), lat[len(lat)-1].Round(time.Microsecond))
}

// retries counts requests that were re-issued after a 503 or transport
// error; the summary reports it so shed-and-retry runs are visible.
var retries atomic.Int64

// failover re-resolves the writable primary against a -peers list and
// rewrites request URLs from the original -url base onto whoever holds
// the role now. Nil (no -peers) disables the whole mechanism.
type failover struct {
	orig  string // the -url base every call site builds URLs from
	peers []string

	mu   sync.Mutex
	base string // current active base (starts as orig)
}

// fo is the process-wide failover state; nil without -peers.
var fo *failover

// rebase maps a URL built on the original base onto the primary that
// -peers failover settled on; identity without -peers. The post-run
// summary reads use it so they survive a mid-run failover too.
func rebase(url string) string {
	if fo == nil {
		return url
	}
	return fo.rewrite(url)
}

// rewrite maps a URL built on the original base onto the active one.
func (f *failover) rewrite(url string) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.base == f.orig || !strings.HasPrefix(url, f.orig) {
		return url
	}
	return f.base + strings.TrimPrefix(url, f.orig)
}

// resolve polls the peers' /readyz for whoever reports role=primary and
// makes it the active base. Both the ready (200) and unready (503)
// bodies carry the role, so a primary that is momentarily gating
// traffic is still found.
func (f *failover) resolve(client *http.Client) {
	for _, peer := range f.peers {
		status, body, _ := do(client, "GET", peer+"/readyz", nil)
		if status == 0 {
			continue
		}
		var info struct {
			Role string `json:"role"`
		}
		if json.Unmarshal([]byte(body), &info) != nil || info.Role != "primary" {
			continue
		}
		f.mu.Lock()
		if f.base != peer {
			f.base = peer
			fmt.Printf("lazyload: failing over to %s (reports role=primary)\n", peer)
		}
		f.mu.Unlock()
		return
	}
}

// maxRetries is how many times a shed request is retried (flag -retries).
var maxRetries = 4

// do issues one request. A transport failure reports status 0 with the
// error as the body — the caller (or doRetry) decides whether to retry;
// a load driver must not abort the whole run because one request raced a
// connection close.
func do(client *http.Client, method, url string, body []byte) (int, string, http.Header) {
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		log.Fatalf("lazyload: %v", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err.Error(), nil
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b), resp.Header
}

// doRetry issues a request and retries it on 503 (overload shedding) or
// transport failure, sleeping a jittered exponential backoff between
// attempts. A Retry-After header from the server overrides the local
// backoff base — the server knows when its queue will drain. With
// -peers, a transport failure or a 403 naming the primary additionally
// re-resolves the writable primary before the retry, so the driver
// follows a failover instead of dying with it.
func doRetry(client *http.Client, method, url string, body []byte) (int, string) {
	backoff := 50 * time.Millisecond
	for attempt := 0; ; attempt++ {
		reqURL := url
		if fo != nil {
			reqURL = fo.rewrite(url)
		}
		status, respBody, hdr := do(client, method, reqURL, body)
		again := status == 0 || status == http.StatusServiceUnavailable
		reResolve := fo != nil && (status == 0 ||
			(status == http.StatusForbidden && strings.Contains(respBody, "primary")))
		if reResolve {
			again = true
		}
		if !again || attempt >= maxRetries {
			return status, respBody
		}
		retries.Add(1)
		if reResolve {
			fo.resolve(client)
		}
		wait := backoff
		if ra := hdr.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
				wait = time.Duration(secs) * time.Second
			}
		}
		// Full jitter in [wait/2, wait): concurrent shed workers must not
		// re-arrive in lockstep and saturate the queue again.
		wait = wait/2 + time.Duration(rand.Int63n(int64(wait/2)+1))
		time.Sleep(wait)
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}
