package lazyxml

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/xmltree"
)

// TestSoakLongWorkload runs one long randomized session exercising every
// feature together — inserts, removals, collapses, rebuilds, snapshots,
// all query engines — with the full-text consistency oracle checked
// throughout. Skipped with -short.
func TestSoakLongWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	r := rand.New(rand.NewSource(20050614)) // the paper's conference date
	db := Open(LD, WithAttributes(), WithValues())
	tags := []string{"a", "b", "c", "d"}
	vals := []string{"u", "v", "w"}

	frag := func() []byte {
		var sb bytes.Buffer
		var emit func(depth int)
		emit = func(depth int) {
			tag := tags[r.Intn(len(tags))]
			if depth > 3 || r.Intn(3) == 0 {
				sb.WriteString("<" + tag + ">" + vals[r.Intn(len(vals))] + "</" + tag + ">")
				return
			}
			sb.WriteString("<" + tag + ` k="` + vals[r.Intn(len(vals))] + `">`)
			for i, n := 0, r.Intn(3); i < n; i++ {
				emit(depth + 1)
			}
			sb.WriteString("</" + tag + ">")
		}
		emit(0)
		return sb.Bytes()
	}
	insertPoint := func() int {
		text, err := db.Text()
		if err != nil || len(text) == 0 {
			return 0
		}
		wrapped := append(append([]byte("<r>"), text...), "</r>"...)
		doc, err := xmltree.Parse(wrapped)
		if err != nil {
			t.Fatalf("super document broken: %v", err)
		}
		var pts []int
		doc.Walk(func(e *xmltree.Element) bool {
			if e != doc.Root {
				pts = append(pts, e.Start-3, e.End-3)
				if e.ContentStart < e.ContentEnd {
					pts = append(pts, e.ContentStart-3)
				}
			}
			return true
		})
		if len(pts) == 0 {
			return 0
		}
		return pts[r.Intn(len(pts))]
	}

	for step := 0; step < 1500; step++ {
		switch {
		case db.Len() == 0 || r.Intn(10) < 5: // insert
			if _, err := db.Insert(insertPoint(), frag()); err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
		case r.Intn(10) < 4: // remove a random element
			tag := tags[r.Intn(len(tags))]
			ms, err := db.Query(tag)
			if err != nil {
				t.Fatal(err)
			}
			if len(ms) == 0 {
				continue
			}
			m := ms[r.Intn(len(ms))]
			if err := db.Remove(m.DescStart, m.DescEnd-m.DescStart); err != nil {
				t.Fatalf("step %d remove: %v", step, err)
			}
		case r.Intn(4) == 0 && db.Segments() > 3: // collapse a random segment
			sid := SID(r.Intn(db.Stats().Inserts) + 1)
			if _, err := db.Collapse(sid); err != nil {
				continue // unknown/stale sid is fine
			}
		case r.Intn(8) == 0: // snapshot round trip
			var buf bytes.Buffer
			if err := db.Snapshot(&buf); err != nil {
				t.Fatalf("step %d snapshot: %v", step, err)
			}
			restored, err := Restore(&buf)
			if err != nil {
				t.Fatalf("step %d restore: %v", step, err)
			}
			db = restored
		case r.Intn(12) == 0: // full rebuild
			if err := db.Rebuild(); err != nil {
				t.Fatalf("step %d rebuild: %v", step, err)
			}
		}

		if step%25 == 0 {
			if err := db.CheckConsistency(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			// All engines agree on a random tag pair.
			a, d := tags[r.Intn(len(tags))], tags[r.Intn(len(tags))]
			nLazy, _ := db.QueryPair(a, d, Descendant, LazyJoin)
			nSTD, _ := db.QueryPair(a, d, Descendant, STD)
			nSkip, _ := db.QueryPair(a, d, Descendant, SkipSTD)
			nAuto, _ := db.QueryPair(a, d, Descendant, Auto)
			if len(nLazy) != len(nSTD) || len(nLazy) != len(nSkip) || len(nLazy) != len(nAuto) {
				t.Fatalf("step %d: engines disagree on %s//%s: %d %d %d %d",
					step, a, d, len(nLazy), len(nSTD), len(nSkip), len(nAuto))
			}
			twigs, err := db.QueryTwig(a + "//" + d)
			if err != nil || len(twigs) != len(nLazy) {
				t.Fatalf("step %d: twig disagrees: %d vs %d (%v)", step, len(twigs), len(nLazy), err)
			}
		}
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	t.Logf("final state: %d bytes, %d segments, %d elements",
		db.Len(), db.Segments(), db.Stats().Elements)
}
