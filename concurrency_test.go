package lazyxml

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentReadersOneWriter exercises the store's locking: one
// goroutine keeps inserting registration records while several readers
// run path queries, in both maintenance modes (LS queries sort the
// tag-list, so they take the write path internally). Run with -race.
func TestConcurrentReadersOneWriter(t *testing.T) {
	for _, mode := range []Mode{LD, LS} {
		mode := mode
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			db := Open(mode)
			mustAppend(t, db, "<people></people>")
			const open = len("<people>")

			var wg sync.WaitGroup
			stop := make(chan struct{})
			errs := make(chan error, 16)

			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					frag := fmt.Sprintf(`<person id="p%d"><phone>1</phone></person>`, i)
					if _, err := db.Insert(open, []byte(frag)); err != nil {
						errs <- err
						return
					}
				}
				close(stop)
			}()
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						if _, err := db.Query("person//phone"); err != nil {
							errs <- err
							return
						}
						if _, err := db.Query("people/person"); err != nil {
							errs <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			n, err := db.Count("person//phone")
			if err != nil || n != 200 {
				t.Fatalf("final count = %d, %v", n, err)
			}
			if err := db.CheckConsistency(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConcurrentSnapshots takes snapshots while updates run.
func TestConcurrentSnapshots(t *testing.T) {
	db := Open(LD)
	mustAppend(t, db, "<a></a>")
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			if _, err := db.Insert(3, []byte("<b/>")); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			var sink countingWriter
			if err := db.Snapshot(&sink); err != nil {
				t.Error(err)
				return
			}
			if sink == 0 {
				t.Error("empty snapshot")
				return
			}
		}
	}()
	wg.Wait()
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

type countingWriter int

func (w *countingWriter) Write(p []byte) (int, error) {
	*w += countingWriter(len(p))
	return len(p), nil
}
