package lazyxml

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"

	"repro/internal/faultline"
)

// seedSource builds a primary-side sharded collection with enough
// documents to populate every shard, returning the names per shard.
func seedSource(t *testing.T, dir string, shards int) (*ShardedCollection, map[int][]string) {
	t.Helper()
	sc, err := OpenShardedCollection(dir, shards, LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	byShard := map[int][]string{}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("src-%d", i)
		if err := sc.Put(name, []byte(fmt.Sprintf("<d><x n=\"%d\"/></d>", i))); err != nil {
			t.Fatal(err)
		}
		byShard[sc.ShardOf(name)] = append(byShard[sc.ShardOf(name)], name)
	}
	return sc, byShard
}

func sortedNames(sc *ShardedCollection, shard int) []string {
	var out []string
	for _, n := range sc.Names() {
		if sc.ShardOf(n) == shard {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// TestReseedInstallAtomic checks the happy path: installing a captured
// snapshot replaces exactly the target shard's documents with the
// source's, survives a close/reopen, and leaves the replication
// positions at the capture's sequences.
func TestReseedInstallAtomic(t *testing.T) {
	for _, shards := range []int{1, 2} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			src, srcByShard := seedSource(t, t.TempDir(), shards)
			defer src.Close()
			dstDir := t.TempDir()
			dst, err := OpenShardedCollection(dstDir, shards, LD, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := dst.Put("stale-doc", []byte("<old/>")); err != nil {
				t.Fatal(err)
			}
			target := dst.ShardOf("stale-doc")

			snap, err := src.CaptureShardSnapshot(target)
			if err != nil {
				t.Fatal(err)
			}
			if err := dst.InstallReseed(target, snap); err != nil {
				t.Fatal(err)
			}

			want := append([]string(nil), srcByShard[target]...)
			sort.Strings(want)
			got := sortedNames(dst, target)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("shard %d after install holds %v, want source's %v", target, got, want)
			}
			for _, n := range want {
				gotText, err := dst.Text(n)
				if err != nil {
					t.Fatal(err)
				}
				srcText, _ := src.Text(n)
				if !bytes.Equal(gotText, srcText) {
					t.Fatalf("doc %s differs after re-seed", n)
				}
			}
			jc := dst.ShardJournal(target)
			seq, _ := jc.Journal().ReplState()
			docSeq, _ := jc.DocReplState()
			if seq != snap.Seq || docSeq != snap.DocSeq {
				t.Fatalf("re-seeded shard at (%d,%d), capture was (%d,%d)", seq, docSeq, snap.Seq, snap.DocSeq)
			}
			if err := dst.CheckConsistency(); err != nil {
				t.Fatal(err)
			}
			if err := dst.Close(); err != nil {
				t.Fatal(err)
			}

			re, err := OpenShardedCollection(dstDir, shards, LD, nil)
			if err != nil {
				t.Fatalf("reopen after install: %v", err)
			}
			defer re.Close()
			if got := sortedNames(re, target); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("reopen lost the re-seed: shard %d holds %v, want %v", target, got, want)
			}
			if err := re.CheckConsistency(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestReseedInstallCrashMatrix kills the "process" at every mutating
// file operation of the staged swap, then reopens with a clean
// filesystem: recovery must either roll the install forward or put the
// old shard back — the shard's document set is exactly the old one or
// exactly the new one, never a mixture, and always consistent.
func TestReseedInstallCrashMatrix(t *testing.T) {
	for _, shards := range []int{1, 2} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			src, srcByShard := seedSource(t, t.TempDir(), shards)
			defer src.Close()

			seedDst := func(ffs *faultline.FaultFS) (*ShardedCollection, int, error) {
				dir := t.TempDir()
				boot, err := OpenShardedCollection(dir, shards, LD, nil)
				if err != nil {
					return nil, 0, err
				}
				if err := boot.Put("stale-doc", []byte("<old/>")); err != nil {
					return nil, 0, err
				}
				target := boot.ShardOf("stale-doc")
				if err := boot.Close(); err != nil {
					return nil, 0, err
				}
				var jOpts []JournalOption
				if ffs != nil {
					jOpts = append(jOpts, WithFS(ffs))
				}
				dst, err := OpenShardedCollection(dir, shards, LD, nil, jOpts...)
				return dst, target, err
			}

			// Sizing run.
			ffs := faultline.NewFaultFS(nil)
			dst, target, err := seedDst(ffs)
			if err != nil {
				t.Fatal(err)
			}
			snap, err := src.CaptureShardSnapshot(target)
			if err != nil {
				t.Fatal(err)
			}
			base := ffs.Mutations()
			if err := dst.InstallReseed(target, snap); err != nil {
				t.Fatalf("fault-free install: %v", err)
			}
			n := ffs.Mutations() - base
			dst.Close()
			if n == 0 {
				t.Fatal("install performed no mutating I/O")
			}

			oldSet := "[stale-doc]"
			newNames := append([]string(nil), srcByShard[target]...)
			sort.Strings(newNames)
			newSet := fmt.Sprint(newNames)

			for k := int64(1); k <= n; k++ {
				ffs := faultline.NewFaultFS(nil)
				dst, target, err := seedDst(ffs)
				if err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
				dir := dst.dir
				ffs.CrashAfter(ffs.Mutations() + k)
				if err := dst.InstallReseed(target, snap); err == nil {
					t.Fatalf("k=%d: install succeeded across a crash", k)
				} else if !errors.Is(err, faultline.ErrInjected) {
					t.Fatalf("k=%d: non-injected failure: %v", k, err)
				}
				dst.Close()

				re, err := OpenShardedCollection(dir, shards, LD, nil)
				if err != nil {
					t.Fatalf("k=%d: reopen after crashed install: %v", k, err)
				}
				if err := re.CheckConsistency(); err != nil {
					t.Fatalf("k=%d: inconsistent after crashed install: %v", k, err)
				}
				got := fmt.Sprint(sortedNames(re, target))
				if got != oldSet && got != newSet {
					t.Fatalf("k=%d: shard %d reopened with %v — neither the old %v nor the new %v",
						k, target, got, oldSet, newSet)
				}
				// Still writable after recovery.
				if err := re.Put("post-crash", []byte("<p/>")); err != nil {
					t.Fatalf("k=%d: write after recovery: %v", k, err)
				}
				re.Close()
			}
		})
	}
}

// TestPromoteEpoch checks the epoch machinery on the store: promotion
// bumps and persists the epoch, AdvanceEpoch is forward-only.
func TestPromoteEpoch(t *testing.T) {
	dir := t.TempDir()
	sc, err := OpenShardedCollection(dir, 2, LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Epoch() != 0 {
		t.Fatalf("fresh store at epoch %d, want 0", sc.Epoch())
	}
	e, err := sc.Promote()
	if err != nil || e != 1 {
		t.Fatalf("Promote = (%d, %v), want (1, nil)", e, err)
	}
	if err := sc.AdvanceEpoch(5); err != nil {
		t.Fatal(err)
	}
	// Epochs only move forward: a lower value is a silent no-op.
	if err := sc.AdvanceEpoch(3); err != nil {
		t.Fatal(err)
	}
	if sc.Epoch() != 5 {
		t.Fatalf("epoch regressed to %d", sc.Epoch())
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenShardedCollection(dir, 2, LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Epoch() != 5 {
		t.Fatalf("epoch not persisted: reopened at %d, want 5", re.Epoch())
	}
}
