package lazyxml

// Backend is the named-document contract every store variant satisfies:
// the explicit form of what was previously implicit — the engine
// interface Collection drives plus the read surface the HTTP server
// consumed. *Collection (ephemeral), *JournaledCollection (durable) and
// *ShardedCollection (N independent stores behind one routing layer)
// all implement it, so every layer above (server, daemon, load driver)
// is written against Backend and never against a concrete store.
type Backend interface {
	// Documents.
	Put(name string, text []byte) error
	Delete(name string) error
	Text(name string) ([]byte, error)
	Names() []string
	Len() int
	SID(name string) (SID, bool)

	// Offset updates (the paper's model: insert/remove a well-formed
	// fragment at a byte offset inside a named document).
	Insert(name string, off int, fragment []byte) (SID, error)
	Remove(name string, off, l int) error
	RemoveElementAt(name string, off int) error

	// Structural queries: whole-collection (fanned out across shards in
	// a sharded backend) and document-scoped.
	Query(path string) ([]Match, error)
	Count(path string) (int, error)
	QueryDoc(name, path string) ([]Match, error)
	CountDoc(name, path string) (int, error)

	// Planned queries: cost-based (or ?algo=-forced) algorithm selection
	// with an explainable plan per shard touched, served from the
	// generation-keyed result cache when a planner is attached.
	// EnablePlanner attaches the shared planner state (one QueryPlanner
	// serves every shard — cache keys embed each shard's store identity);
	// TagCardinality sums a tag's indexed-element count across shards.
	QueryPlanned(path string, opt PlanOpt) ([]Match, []PlanInfo, error)
	QueryDocPlanned(name, path string, opt PlanOpt) ([]Match, []PlanInfo, error)
	TagCardinality(tag string) int
	EnablePlanner(qp *QueryPlanner)

	// Streaming queries (DESIGN.md §13): the same result set as the
	// materialized paths above — identical matches in identical order —
	// delivered through a pull iterator executing against a pinned MVCC
	// view, with an optional per-query memory budget, context
	// cancellation between pulls, and true early termination via
	// StreamOpt.Limit. A sharded backend merges per-shard iterators over
	// its consistent cut with bounded fan-out. The returned stream must
	// be Closed exactly once; Close releases the pinned views.
	QueryStream(path string, opt StreamOpt) (*ResultStream, error)
	QueryDocStream(name, path string, opt StreamOpt) (*ResultStream, error)

	// Maintenance and introspection. Collapse packs one named document's
	// segment subtree into a single fresh segment (§5.3); DocSegments is
	// the cheap per-document segment census the maintenance policy polls
	// to decide which documents earn one.
	Stats() Stats
	Collapse(name string) (SID, error)
	CollapseAll() error
	DocSegments() []DocSegStat
	CheckConsistency() error

	// Shard topology. A single-store backend reports one shard and
	// routes every name to it; a sharded backend reports the shard a
	// name lives on (or would be routed to).
	ShardCount() int
	ShardOf(name string) int
	ShardStats() []ShardStat

	// MVCC snapshot reads (DESIGN.md §12). View pins one document at one
	// generation; ViewAll pins the whole backend, one view per shard.
	// Queries on a view handle never take a store lock and never block
	// behind writers or maintenance; the handle must be Released exactly
	// once. ViewStats reports the per-shard view lifecycle counters
	// (live handles, oldest retained generation, reclamations).
	View(name string) (*DocView, error)
	ViewAll() (*CollectionView, error)
	ViewStats() []ShardViewStats
}

// ShardStat is one shard's slice of a backend's statistics: the signal
// feed for per-shard maintenance decisions (when does shard i's update
// log earn a Collapse, when has its WAL earned a Compact?).
type ShardStat struct {
	Shard int
	Docs  int
	Stats Stats

	// Journal footprint and replication sequences; zero on in-memory
	// backends. JournalRecords/JournalBytes count what currently sits in
	// the shard's WAL files (segment journal + name log) — the
	// denominator for compaction policy and replication lag. Seq and
	// DocSeq are the shard's monotonic replication positions (records
	// ever appended to each log).
	JournalRecords int64
	JournalBytes   int64
	Seq            int64
	DocSeq         int64
}

// DocSegStat is one document's slice of the segment census: how many
// segments its ER-subtree currently holds, and which shard it lives on.
// The count is the direct §5.3 signal — a document whose subtree has
// fragmented into many small segments pays for it on every Lazy-Join,
// and a Collapse folds it back to one.
type DocSegStat struct {
	Name     string
	Shard    int
	Segments int
}

var (
	_ Backend = (*Collection)(nil)
	_ Backend = (*JournaledCollection)(nil)
	_ Backend = (*ShardedCollection)(nil)
)
