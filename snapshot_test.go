package lazyxml

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestSnapshotRoundTrip(t *testing.T) {
	db := Open(LD)
	mustAppend(t, db, "<a><x></x></a>")
	if _, err := db.Insert(6, []byte("<d><d/></d>")); err != nil {
		t.Fatal(err)
	}
	if err := db.Remove(9, 4); err != nil { // the inner <d/>
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := got.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	wantText, _ := db.Text()
	gotText, err := got.Text()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantText, gotText) {
		t.Fatalf("text diverged: %s vs %s", wantText, gotText)
	}
	ws, gs := db.Stats(), got.Stats()
	if ws != gs {
		t.Fatalf("stats diverged: %+v vs %+v", ws, gs)
	}
	for _, q := range []string{"a//d", "x//d", "a/x", "x/d"} {
		n1, err1 := db.Count(q)
		n2, err2 := got.Count(q)
		if err1 != nil || err2 != nil || n1 != n2 {
			t.Fatalf("%s: %d/%v vs %d/%v", q, n1, err1, n2, err2)
		}
	}
	// The restored store must keep working: updates and queries.
	if _, err := got.Append([]byte("<a><d/></a>")); err != nil {
		t.Fatal(err)
	}
	if err := got.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	n, err := got.Count("a//d")
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := db.Count("a//d")
	if n != orig+1 {
		t.Fatalf("post-restore insert: a//d = %d, want %d", n, orig+1)
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.snap")
	db := Open(LS)
	mustAppend(t, db, "<a><b/><c/></a>")
	if err := db.SnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := RestoreFile(path, WithAlgorithm(STD))
	if err != nil {
		t.Fatal(err)
	}
	if got.Mode() != LS {
		t.Fatalf("mode = %v, want LS (from snapshot)", got.Mode())
	}
	if n, _ := got.Count("a//b"); n != 1 {
		t.Fatalf("a//b = %d", n)
	}
	if _, err := RestoreFile(filepath.Join(t.TempDir(), "missing.snap")); err == nil {
		t.Fatal("restore of missing file succeeded")
	}
}

func TestSnapshotWithoutText(t *testing.T) {
	db := Open(LD, WithoutText())
	mustAppend(t, db, "<a><b/></a>")
	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := got.Text(); err == nil {
		t.Fatal("restored WithoutText store has text")
	}
	if n, _ := got.Count("a/b"); n != 1 {
		t.Fatal("query broken after textless restore")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("x"),
		[]byte("NOTASNAPSHOT"),
		[]byte("LXML1"), // truncated after magic
	}
	for _, c := range cases {
		if _, err := Restore(bytes.NewReader(c)); err == nil {
			t.Errorf("Restore(%q) succeeded", c)
		}
	}
	// A valid snapshot truncated in the middle must fail, not hang or
	// produce a half-store.
	db := Open(LD)
	mustAppend(t, db, "<a><b/><c/><d/></a>")
	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for _, cut := range []int{6, len(whole) / 3, len(whole) / 2, len(whole) - 1} {
		if _, err := Restore(bytes.NewReader(whole[:cut])); err == nil {
			t.Errorf("Restore of %d/%d bytes succeeded", cut, len(whole))
		}
	}
}

// TestQuickSnapshotAfterRandomWorkload snapshots stores built by random
// update histories and verifies full behavioural equivalence after
// restore.
func TestQuickSnapshotAfterRandomWorkload(t *testing.T) {
	tags := []string{"a", "b", "c"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := Open(LD)
		for i := 0; i < 12; i++ {
			text, _ := db.Text()
			if len(text) > 0 && r.Intn(4) == 0 {
				// Remove a random top-level-ish element via Query.
				ms, err := db.Query(tags[r.Intn(len(tags))])
				if err != nil || len(ms) == 0 {
					continue
				}
				m := ms[r.Intn(len(ms))]
				if err := db.Remove(m.DescStart, m.DescEnd-m.DescStart); err != nil {
					return false
				}
				continue
			}
			frag := randomSnapshotFragment(r, tags)
			gp := 0
			if len(text) > 0 {
				// Insert after some element's end (always valid).
				ms, err := db.Query(tags[r.Intn(len(tags))])
				if err != nil {
					return false
				}
				if len(ms) > 0 {
					gp = ms[r.Intn(len(ms))].DescEnd
				}
			}
			if _, err := db.Insert(gp, []byte(frag)); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := db.Snapshot(&buf); err != nil {
			return false
		}
		got, err := Restore(&buf)
		if err != nil {
			t.Log(err)
			return false
		}
		if err := got.CheckConsistency(); err != nil {
			t.Log(err)
			return false
		}
		for _, a := range tags {
			for _, d := range tags {
				n1, _ := db.Count(a + "//" + d)
				n2, _ := got.Count(a + "//" + d)
				if n1 != n2 {
					t.Logf("seed %d %s//%s: %d vs %d", seed, a, d, n1, n2)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func randomSnapshotFragment(r *rand.Rand, tags []string) string {
	var sb strings.Builder
	var emit func(depth int)
	emit = func(depth int) {
		tag := tags[r.Intn(len(tags))]
		if depth > 2 || r.Intn(3) == 0 {
			sb.WriteString("<" + tag + "/>")
			return
		}
		sb.WriteString("<" + tag + ">")
		for i, n := 0, r.Intn(3); i < n; i++ {
			emit(depth + 1)
		}
		sb.WriteString("</" + tag + ">")
	}
	emit(0)
	return sb.String()
}
