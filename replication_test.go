package lazyxml

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestReplSeqPersistence: sequence numbers survive close/reopen, and
// Compact advances the horizon and persists the new base.
func TestReplSeqPersistence(t *testing.T) {
	dir := t.TempDir()
	jc, err := OpenJournaledCollection(dir, LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := jc.Put("a", []byte("<a><x/></a>")); err != nil {
		t.Fatal(err)
	}
	if err := jc.Put("b", []byte("<b></b>")); err != nil {
		t.Fatal(err)
	}
	if _, err := jc.Insert("b", 3, []byte("<y/>")); err != nil {
		t.Fatal(err)
	}
	seq, horizon := jc.Journal().ReplState()
	docSeq, docHorizon := jc.DocReplState()
	if seq == 0 || docSeq == 0 {
		t.Fatalf("sequences did not advance: seq=%d docSeq=%d", seq, docSeq)
	}
	if horizon != 0 || docHorizon != 0 {
		t.Fatalf("fresh journal's horizon should be 0, got %d/%d", horizon, docHorizon)
	}
	if err := jc.Close(); err != nil {
		t.Fatal(err)
	}

	jc2, err := OpenJournaledCollection(dir, LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := jc2.Journal().ReplState(); s != seq {
		t.Fatalf("seq after reopen = %d, want %d", s, seq)
	}
	if d, _ := jc2.DocReplState(); d != docSeq {
		t.Fatalf("docSeq after reopen = %d, want %d", d, docSeq)
	}

	if err := jc2.Compact(); err != nil {
		t.Fatal(err)
	}
	s, h := jc2.Journal().ReplState()
	if s != seq || h != seq {
		t.Fatalf("after compact seq=%d horizon=%d, want both %d", s, h, seq)
	}
	d, dh := jc2.DocReplState()
	if d != docSeq || dh != docSeq {
		t.Fatalf("after compact docSeq=%d docHorizon=%d, want both %d", d, dh, docSeq)
	}
	// A reader below the horizon is told to re-seed.
	cur := &JournalCursor{Seq: 0}
	if _, err := jc2.Journal().ReadRecords(cur, 10); err != ErrCompacted {
		t.Fatalf("ReadRecords below horizon: err = %v, want ErrCompacted", err)
	}
	if err := jc2.Close(); err != nil {
		t.Fatal(err)
	}

	// The compacted base survives another reopen via the meta files.
	jc3, err := OpenJournaledCollection(dir, LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer jc3.Close()
	if s, h := jc3.Journal().ReplState(); s != seq || h != seq {
		t.Fatalf("after reopen seq=%d horizon=%d, want both %d", s, h, seq)
	}
	if _, err := os.Stat(filepath.Join(dir, "journal.seq")); err != nil {
		t.Fatalf("journal.seq meta missing: %v", err)
	}
}

// TestReplReadRecordsByteIdentity: the records ReadRecords returns are
// byte-identical to the WAL files — the wire format IS the file format.
func TestReplReadRecordsByteIdentity(t *testing.T) {
	dir := t.TempDir()
	jc, err := OpenJournaledCollection(dir, LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := jc.Put("doc", []byte("<doc><a/><b/></doc>")); err != nil {
		t.Fatal(err)
	}
	if _, err := jc.Insert("doc", 5, []byte("<c/>")); err != nil {
		t.Fatal(err)
	}
	if err := jc.RemoveElementAt("doc", 9); err != nil {
		t.Fatal(err)
	}
	if err := jc.Delete("doc"); err != nil {
		t.Fatal(err)
	}

	var streamed []byte
	cur := &JournalCursor{}
	for {
		recs, err := jc.Journal().ReadRecords(cur, 2) // small batches: exercise the cursor
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			break
		}
		for _, r := range recs {
			streamed = append(streamed, r.Data...)
		}
	}
	onDisk, err := os.ReadFile(filepath.Join(dir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed, onDisk) {
		t.Fatalf("streamed segment records (%d bytes) differ from journal.wal (%d bytes)",
			len(streamed), len(onDisk))
	}

	streamed = nil
	dcur := &JournalCursor{}
	for {
		recs, err := jc.ReadDocRecords(dcur, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			break
		}
		for _, r := range recs {
			streamed = append(streamed, r.Data...)
		}
	}
	onDisk, err = os.ReadFile(filepath.Join(dir, "docs.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed, onDisk) {
		t.Fatalf("streamed name records (%d bytes) differ from docs.wal (%d bytes)",
			len(streamed), len(onDisk))
	}
	jc.Close()
}

// TestReplApplyMirrors: records tapped off one collection and applied to
// another reproduce the documents, the query results, and the WAL bytes.
func TestReplApplyMirrors(t *testing.T) {
	srcDir, dstDir := t.TempDir(), t.TempDir()
	src, err := OpenJournaledCollection(srcDir, LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := OpenJournaledCollection(dstDir, LD, nil)
	if err != nil {
		t.Fatal(err)
	}

	type taped struct {
		doc bool
		seq int64
		rec []byte
	}
	var tape []taped
	src.Journal().SetReplTap(func(seq int64, rec []byte) {
		tape = append(tape, taped{false, seq, append([]byte(nil), rec...)})
	})
	src.SetDocReplTap(func(seq int64, rec []byte) {
		tape = append(tape, taped{true, seq, append([]byte(nil), rec...)})
	})

	if err := src.Put("inv", []byte("<inv><item/></inv>")); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Insert("inv", 5, []byte("<item n=\"2\"/>")); err != nil {
		t.Fatal(err)
	}
	if err := src.Put("tmp", []byte("<tmp/>")); err != nil {
		t.Fatal(err)
	}
	if err := src.Delete("tmp"); err != nil {
		t.Fatal(err)
	}

	// The tape interleaves the two logs in true order (each append fires
	// its tap synchronously), so applying in tape order is valid.
	for _, rec := range tape {
		var seq int64
		var err error
		if rec.doc {
			seq, err = dst.ApplyDocRecord(rec.rec)
		} else {
			seq, err = dst.ApplySegmentRecord(rec.rec)
		}
		if err != nil {
			t.Fatalf("apply: %v", err)
		}
		if seq != rec.seq {
			t.Fatalf("record landed at seq %d on the replica, %d on the source", seq, rec.seq)
		}
	}

	if err := dst.CheckConsistency(); err != nil {
		t.Fatalf("replica inconsistent: %v", err)
	}
	if got, want := dst.Names(), src.Names(); len(got) != len(want) {
		t.Fatalf("replica names %v, source %v", got, want)
	}
	srcText, _ := src.Text("inv")
	dstText, err := dst.Text("inv")
	if err != nil || !bytes.Equal(srcText, dstText) {
		t.Fatalf("replica text %q (%v), source %q", dstText, err, srcText)
	}
	srcN, _ := src.Count("inv//item")
	dstN, err := dst.Count("inv//item")
	if err != nil || srcN != dstN {
		t.Fatalf("replica count %d (%v), source %d", dstN, err, srcN)
	}

	src.Close()
	dst.Close()
	for _, name := range []string{"journal.wal", "docs.wal"} {
		a, err := os.ReadFile(filepath.Join(srcDir, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dstDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s differs between source (%d bytes) and replica (%d bytes)", name, len(a), len(b))
		}
	}
}
