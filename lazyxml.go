// Package lazyxml is a lazy XML update and structural-join engine: a Go
// implementation of "Lazy XML Updates: Laziness as a Virtue of Update and
// Structural Join Efficiency" (Catania, Wang, Ooi, Wang — SIGMOD 2005).
//
// The whole XML database is modeled as a single super document. Updates
// insert or remove XML segments (well-formed fragments) identified only
// by a global character offset and a length — exactly the information a
// plain text edit provides. Elements are indexed under immutable local
// labels, so updates never rewrite existing index records; a small
// in-memory update log (the SB-tree over segments plus a tag-list) makes
// the labels interpretable, and the segment-aware Lazy-Join algorithm
// uses it to skip whole segments during structural joins.
//
// # Quick start
//
//	db := lazyxml.Open(lazyxml.LD)
//	db.Append([]byte("<library><shelf></shelf></library>"))
//	db.Insert(16, []byte("<book><title/></book>"))
//	matches, _ := db.Query("shelf//title")
//
// See the examples directory for complete programs.
package lazyxml

import (
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/join"
	"repro/internal/plan"
	"repro/internal/segment"
	"repro/internal/xmltree"
)

// Mode selects the update-log maintenance strategy of Section 5.1 of the
// paper.
type Mode = core.Mode

// Maintenance modes.
const (
	// LD (lazy dynamic) keeps the update log incrementally sorted; the
	// log is always ready for querying.
	LD = core.LD
	// LS (lazy static) appends to the tag-list in O(1) and sorts it just
	// before each query, minimizing update cost.
	LS = core.LS
)

// Algorithm selects the structural-join implementation.
type Algorithm = core.Algorithm

// Join algorithms.
const (
	// LazyJoin is the segment-aware algorithm of the paper (Figure 9).
	LazyJoin = core.LazyJoin
	// STD is the classic Stack-Tree-Desc merge over global positions
	// reconstructed through the SB-tree.
	STD = core.STD
	// SkipSTD is STD with galloping skips over non-joining runs.
	SkipSTD = core.SkipSTD
	// Auto picks LazyJoin or STD per query from update-log statistics,
	// following the paper's Section 5.3 observation that Lazy-Join loses
	// its edge when segments hold too few elements each.
	Auto = core.Auto
)

// Axis selects the structural relationship.
type Axis = join.Axis

// Axes.
const (
	// Descendant joins ancestor//descendant pairs.
	Descendant = join.Descendant
	// Child joins parent/child pairs.
	Child = join.Child
)

// Match is one structural-join result: global positions plus the lazy
// (segment id, immutable local label) identity of both elements.
type Match = core.Match

// ElemRef is one element of a match: the segment it belongs to and its
// immutable local (start, end, level) label.
type ElemRef = join.ElemRef

// Stats summarizes the store's contents and update-log footprint.
type Stats = core.Stats

// SID identifies a segment of the super document.
type SID = segment.SID

// DB is a lazy XML database.
type DB struct {
	store    *core.Store
	alg      Algorithm
	coreOpts []core.Option
	// planc memoizes planner statistics against the store generation; it
	// exists on every DB (planning is always available, caching is opt-in
	// at the collection layer via EnablePlanner).
	planc *plan.Collector
}

// Option configures Open.
type Option func(*DB)

// WithAlgorithm sets the join algorithm used by Query and Count
// (default LazyJoin).
func WithAlgorithm(a Algorithm) Option { return func(db *DB) { db.alg = a } }

// WithoutText disables retention of the super-document text: updates and
// queries work unchanged (the engine only needs positions and lengths),
// but Text, Rebuild, RemoveElementAt and SaveFile become unavailable.
func WithoutText() Option {
	return func(db *DB) { db.coreOpts = append(db.coreOpts, core.WithoutText()) }
}

// WithAttributes indexes attributes as pseudo-elements named "@attr",
// one level below their owner element, so path steps like "person/@id"
// work (the paper treats attributes as subelements).
func WithAttributes() Option {
	return func(db *DB) { db.coreOpts = append(db.coreOpts, core.WithAttributes()) }
}

// WithValues maintains a (tag, value) → elements index so twig patterns
// can use equality predicates: person[name='Ann'], person[@id='p1'].
// Values are whitespace-trimmed and capped at 64 bytes; like element
// labels, value records are never rewritten by updates — which also
// means removals must cover whole elements (the documented contract of
// Remove) for indexed values to stay accurate.
func WithValues() Option {
	return func(db *DB) { db.coreOpts = append(db.coreOpts, core.WithValues()) }
}

// Open returns an empty lazy XML database.
func Open(mode Mode, opts ...Option) *DB {
	db := &DB{alg: LazyJoin}
	for _, o := range opts {
		o(db)
	}
	db.store = core.NewStore(mode, db.coreOpts...)
	db.planc = plan.NewCollector(db.store, nil, 0)
	return db
}

// OpenFile loads an XML file as the initial single segment of a new
// database.
func OpenFile(path string, mode Mode, opts ...Option) (*DB, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	db := Open(mode, opts...)
	if len(text) > 0 {
		if _, err := db.Insert(0, text); err != nil {
			return nil, fmt.Errorf("lazyxml: %s: %w", path, err)
		}
	}
	return db, nil
}

// Insert inserts a well-formed XML fragment at global byte offset gp and
// returns the id of the new segment. The fragment must keep the super
// document well-formed; the engine trusts the caller on that (it sees
// only positions, as in the paper) and CheckConsistency can audit it.
func (db *DB) Insert(gp int, fragment []byte) (SID, error) {
	return db.store.InsertSegment(gp, fragment)
}

// Append inserts the fragment at the end of the super document as a new
// top-level segment.
func (db *DB) Append(fragment []byte) (SID, error) {
	return db.store.InsertSegment(db.store.Len(), fragment)
}

// Remove removes the byte range [gp, gp+l) from the super document. The
// range must cover whole elements so the super document stays
// well-formed.
func (db *DB) Remove(gp, l int) error { return db.store.RemoveSegment(gp, l) }

// ErrNotAnElement is returned by RemoveElementAt when no element starts
// at the given offset.
var ErrNotAnElement = errors.New("lazyxml: no element starts at that offset")

// ElementExtentAt returns the byte length of the element whose start tag
// begins at global offset gp. It needs the retained text.
func (db *DB) ElementExtentAt(gp int) (int, error) {
	text, err := db.store.Text()
	if err != nil {
		return 0, err
	}
	wrapped := append(append([]byte("<r>"), text...), "</r>"...)
	doc, err := xmltree.Parse(wrapped)
	if err != nil {
		return 0, fmt.Errorf("lazyxml: super document unparsable: %w", err)
	}
	const off = 3
	length := 0
	doc.Walk(func(e *xmltree.Element) bool {
		if e != doc.Root && e.Start-off == gp {
			length = e.End - e.Start
			return false
		}
		return true
	})
	if length == 0 {
		return 0, ErrNotAnElement
	}
	return length, nil
}

// RemoveElementAt removes the single element whose start tag begins at
// global offset gp. It needs the retained text to find the element's
// extent.
func (db *DB) RemoveElementAt(gp int) error {
	l, err := db.ElementExtentAt(gp)
	if err != nil {
		return err
	}
	return db.store.RemoveSegment(gp, l)
}

// Query evaluates a path expression of the form
//
//	tag1//tag2/tag3...
//
// where // selects descendants and / selects children, and returns the
// matches of the final step paired with their ancestors from the
// preceding step. A single-step path (just "tag") returns every element
// with that tag (as Desc, with a zero Anc). The first binary step runs
// the configured join algorithm; later steps join intermediate results
// with Stack-Tree-Desc over reconstructed global positions.
// Queries run against an MVCC snapshot view of the store (see
// internal/core/view.go and DESIGN.md §12), so they never hold the store
// lock while joining and never block behind a writer or a maintenance
// pass.
func (db *DB) Query(path string) ([]Match, error) {
	p, err := ParsePath(path)
	if err != nil {
		return nil, err
	}
	v := db.store.AcquireView()
	defer v.Release()
	return evalPathOn(v, db.alg, p)
}

// QueryPair runs a single structural join between two tags on the given
// axis with the given algorithm, bypassing the path parser.
func (db *DB) QueryPair(aTag, dTag string, axis Axis, alg Algorithm) ([]Match, error) {
	v := db.store.AcquireView()
	defer v.Release()
	return v.Query(aTag, dTag, axis, alg)
}

// QueryPairParallel runs Lazy-Join with the descendant segment list
// partitioned across the given number of goroutines (the
// parallelization the paper's introduction attributes to segments).
// Results are identical to QueryPair(..., LazyJoin), order included.
func (db *DB) QueryPairParallel(aTag, dTag string, axis Axis, workers int) ([]Match, error) {
	v := db.store.AcquireView()
	defer v.Release()
	return v.QueryParallel(aTag, dTag, axis, workers)
}

// Count returns the number of matches of the path expression.
func (db *DB) Count(path string) (int, error) {
	ms, err := db.Query(path)
	if err != nil {
		return 0, err
	}
	return len(ms), nil
}

// Text returns a copy of the current super document, read from an MVCC
// snapshot view so a concurrent writer is never blocked.
func (db *DB) Text() ([]byte, error) {
	v := db.store.AcquireView()
	defer v.Release()
	return v.Text()
}

// ViewStats returns the store's MVCC view-lifecycle counters.
func (db *DB) ViewStats() ViewStats { return db.store.ViewStats() }

// Len returns the length of the super document in bytes.
func (db *DB) Len() int { return db.store.Len() }

// Segments returns the number of segments (excluding the dummy root).
func (db *DB) Segments() int { return db.store.Segments() }

// Stats returns sizes and counters, including the update-log footprint.
func (db *DB) Stats() Stats { return db.store.Stats() }

// Mode returns the maintenance mode.
func (db *DB) Mode() Mode { return db.store.Mode() }

// Rebuild collapses the database into a single segment, clearing the
// update log — the paper's "maintenance hours" re-index.
func (db *DB) Rebuild() error { return db.store.Rebuild() }

// Collapse merges segment sid and all its descendant segments into one
// fresh segment covering the same text (the paper's §5.3 remedy when the
// segment count grows too large for query performance). It returns the
// new segment's id.
func (db *DB) Collapse(sid SID) (SID, error) { return db.store.CollapseSegment(sid) }

// CheckConsistency re-parses the super document and verifies that the
// update log and element index describe it exactly.
func (db *DB) CheckConsistency() error { return db.store.CheckAgainstText() }

// SaveFile writes the super document to a file; OpenFile reloads it (as
// a single segment — persistence implies a rebuild, matching the paper's
// maintenance model).
func (db *DB) SaveFile(path string) error {
	text, err := db.store.Text()
	if err != nil {
		return err
	}
	return os.WriteFile(path, text, 0o644)
}

// Snapshot writes the complete database state — update log, element
// index, tag dictionary and (when retained) the text — to w. Unlike
// SaveFile, a snapshot preserves the segment structure, so restoring it
// does not imply a rebuild.
func (db *DB) Snapshot(w io.Writer) error { return db.store.Snapshot(w) }

// SnapshotFile writes a snapshot to a file.
func (db *DB) SnapshotFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := db.Snapshot(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Restore reads a snapshot written by Snapshot and returns the restored
// database. The maintenance mode is taken from the snapshot.
func Restore(r io.Reader, opts ...Option) (*DB, error) {
	store, err := core.RestoreStore(r)
	if err != nil {
		return nil, err
	}
	db := &DB{store: store, alg: LazyJoin}
	for _, o := range opts {
		o(db)
	}
	// Whatever the options did, the restored engine wins: WithoutText is
	// a property of the snapshot, not of the restore call.
	db.store = store
	db.planc = plan.NewCollector(db.store, nil, 0)
	return db, nil
}

// RestoreFile reads a snapshot from a file.
func RestoreFile(path string, opts ...Option) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Restore(f, opts...)
}

// DumpSegments renders the ER-tree (segments, spans, local positions,
// tombstones) as indented text for inspection.
func (db *DB) DumpSegments() string { return db.store.SegmentTree().Dump() }

// Store exposes the underlying engine for benchmarks and tests.
func (db *DB) Store() *core.Store { return db.store }
