package lazyxml_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	lazyxml "repro"
	"repro/internal/maintain"
)

// TestSoakAutoCompaction runs a long mixed workload on a durable 2-shard
// store with the maintenance controller ticking in the loop, and checks
// three things the short tests cannot: the controller fires repeatedly
// (not just once) over a realistic op stream, per-shard segment counts
// stay under the high watermark at every post-tick checkpoint, and the
// store's query results keep matching a fresh-parse oracle built from
// the expected document texts. Skipped with -short.
func TestSoakAutoCompaction(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		shards       = 2
		docCount     = 10
		ops          = 1200
		tickEvery    = 40
		oracleEvery  = 150
		segmentsHigh = 24
	)
	r := rand.New(rand.NewSource(20050614)) // the paper's conference date
	dir := t.TempDir()
	sc, err := lazyxml.OpenShardedCollection(dir, shards, lazyxml.LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctl := maintain.New(sc, maintain.Config{
		Policy: maintain.Policy{
			SegmentsHigh: segmentsHigh,
			SegmentsLow:  docCount, // collapsed floor: one segment per doc
			LogBytesHigh: 32 << 10,
			MinActionGap: time.Nanosecond,
		},
		IsPrimary: func() bool { return true },
	})
	ctx := context.Background()

	// model mirrors what each document's text must be; the store is
	// compared against it (and against a fresh parse of it) throughout.
	model := map[string][]byte{}
	names := make([]string, docCount)
	for i := range names {
		names[i] = fmt.Sprintf("soak-%02d", i)
		seed := []byte("<r><i/></r>")
		if err := sc.Put(names[i], seed); err != nil {
			t.Fatal(err)
		}
		model[names[i]] = append([]byte(nil), seed...)
	}

	frags := [][]byte{
		[]byte("<i/>"),
		[]byte("<x><i/></x>"),
		[]byte("<y><i/></y>"),
		[]byte("<x><y><i/></y></x>"),
	}
	paths := []string{"r//i", "r//x", "r//y", "x//i", "y//i"}

	// insertPoints lists the element-boundary offsets where a fragment
	// can go: right after the root's start tag, before the root's end
	// tag, and before any existing element start.
	insertPoints := func(text []byte) []int {
		pts := []int{len("<r>"), bytes.LastIndex(text, []byte("</r>"))}
		for _, tag := range []string{"<i", "<x", "<y"} {
			for from := 0; ; {
				k := bytes.Index(text[from:], []byte(tag))
				if k < 0 {
					break
				}
				pts = append(pts, from+k)
				from += k + 1
			}
		}
		return pts
	}

	checkOracle := func(stage string) {
		t.Helper()
		oracle := lazyxml.NewCollection(lazyxml.LD)
		for _, name := range names {
			got, err := sc.Text(name)
			if err != nil {
				t.Fatalf("%s: text %s: %v", stage, name, err)
			}
			if !bytes.Equal(got, model[name]) {
				t.Fatalf("%s: doc %s diverged from model:\nstore: %s\nmodel: %s", stage, name, got, model[name])
			}
			if err := oracle.Put(name, model[name]); err != nil {
				t.Fatalf("%s: oracle put %s: %v", stage, name, err)
			}
		}
		for _, path := range paths {
			want, err := oracle.Count(path)
			if err != nil {
				t.Fatalf("%s: oracle count %s: %v", stage, path, err)
			}
			got, err := sc.Count(path)
			if err != nil {
				t.Fatalf("%s: count %s: %v", stage, path, err)
			}
			if got != want {
				t.Fatalf("%s: count %s: store %d, fresh-parse oracle %d", stage, path, got, want)
			}
			for _, name := range names {
				wantDoc, err := oracle.CountDoc(name, path)
				if err != nil {
					t.Fatal(err)
				}
				gotDoc, err := sc.CountDoc(name, path)
				if err != nil {
					t.Fatal(err)
				}
				if gotDoc != wantDoc {
					t.Fatalf("%s: countDoc %s %s: store %d, oracle %d", stage, name, path, gotDoc, wantDoc)
				}
			}
		}
		if err := sc.CheckConsistency(); err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
	}

	for op := 1; op <= ops; op++ {
		name := names[r.Intn(len(names))]
		text := model[name]
		if r.Intn(10) < 7 { // insert a fragment at a random boundary
			frag := frags[r.Intn(len(frags))]
			pts := insertPoints(text)
			off := pts[r.Intn(len(pts))]
			if _, err := sc.Insert(name, off, frag); err != nil {
				t.Fatalf("op %d: insert %s@%d: %v", op, name, off, err)
			}
			next := make([]byte, 0, len(text)+len(frag))
			next = append(next, text[:off]...)
			next = append(next, frag...)
			next = append(next, text[off:]...)
			model[name] = next
		} else { // remove one leaf element, if the doc still has spares
			var leaves []int
			for from := 0; ; {
				k := bytes.Index(text[from:], []byte("<i/>"))
				if k < 0 {
					break
				}
				leaves = append(leaves, from+k)
				from += k + 1
			}
			if len(leaves) > 1 {
				off := leaves[r.Intn(len(leaves))]
				if err := sc.RemoveElementAt(name, off); err != nil {
					t.Fatalf("op %d: remove %s@%d: %v", op, name, off, err)
				}
				model[name] = append(append([]byte(nil), text[:off]...), text[off+len("<i/>"):]...)
			}
		}

		if op%tickEvery == 0 {
			if err := ctl.RunOnce(ctx); err != nil {
				t.Fatalf("op %d: maintenance cycle: %v", op, err)
			}
			// Post-tick checkpoint: the controller must be holding every
			// shard under the high watermark.
			for _, st := range sc.ShardStats() {
				if st.Stats.Segments >= segmentsHigh {
					t.Fatalf("op %d: shard %d at %d segments, high watermark %d (controller not keeping up: %+v)",
						op, st.Shard, st.Stats.Segments, segmentsHigh, ctl.Snapshot())
				}
			}
		}
		if op%oracleEvery == 0 {
			checkOracle(fmt.Sprintf("op %d", op))
		}
	}

	checkOracle("final")
	snap := ctl.Snapshot()
	if snap.CollapseRuns+snap.CollapseAlls < 2 {
		t.Fatalf("auto-compaction fired fewer than twice over %d ops: %+v", ops, snap)
	}
	if snap.Compacts < 2 {
		t.Fatalf("journal never compacted twice on a durable store: %+v", snap)
	}
	if snap.Errors != 0 {
		t.Fatalf("maintenance errors during soak: %d, last %q", snap.Errors, snap.LastError)
	}

	// The compacted journals must reproduce the final state on reopen.
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	sc2, err := lazyxml.OpenShardedCollection(dir, shards, lazyxml.LD, nil)
	if err != nil {
		t.Fatalf("reopen after soak: %v", err)
	}
	defer sc2.Close()
	for _, name := range names {
		got, err := sc2.Text(name)
		if err != nil {
			t.Fatalf("reopen: text %s: %v", name, err)
		}
		if !bytes.Equal(got, model[name]) {
			t.Fatalf("reopen: doc %s diverged:\nstore: %s\nmodel: %s", name, got, model[name])
		}
	}
	if err := sc2.CheckConsistency(); err != nil {
		t.Fatalf("reopen: %v", err)
	}
}
