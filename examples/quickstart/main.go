// Quickstart: open a lazy XML database, apply a few text-edit-style
// updates, and run structural path queries.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	lazyxml "repro"
)

func main() {
	db := lazyxml.Open(lazyxml.LD)

	// The database models the whole XML store as one "super document".
	// Every update is the insertion (or removal) of a well-formed
	// fragment at a byte offset — exactly what editing the text file
	// would do.
	if _, err := db.Append([]byte("<library><shelf></shelf></library>")); err != nil {
		log.Fatal(err)
	}

	// Insert two books inside the shelf. Offset 16 is just after
	// "<library><shelf>".
	for _, book := range []string{
		"<book><title>The Art of Laziness</title><author>C. Atania</author></book>",
		"<book><title>Structural Joins</title><author>W. Wang</author></book>",
	} {
		if _, err := db.Insert(16, []byte(book)); err != nil {
			log.Fatal(err)
		}
	}

	// Structural path queries: // is ancestor//descendant, / is
	// parent/child.
	for _, q := range []string{"shelf//title", "library//author", "book/title", "library//book//author"} {
		n, err := db.Count(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s -> %d match(es)\n", q, n)
	}

	// Matches carry both reconstructed global positions and the lazy
	// (segment, immutable local label) identity.
	ms, err := db.Query("shelf//author")
	if err != nil {
		log.Fatal(err)
	}
	text, _ := db.Text()
	for _, m := range ms {
		fmt.Printf("author at [%d,%d) in segment %d: %s\n",
			m.DescStart, m.DescEnd, m.Desc.SID, text[m.DescStart:m.DescEnd])
	}

	// Updates never rewrite existing index entries; the update log stays
	// small.
	st := db.Stats()
	fmt.Printf("\n%d segments, %d elements; update log: %.1f KB\n",
		st.Segments, st.Elements, float64(st.SBTreeBytes+st.TagListBytes)/1024)

	// The store can always prove itself consistent with its text.
	if err := db.CheckConsistency(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("consistency check: ok")
}
