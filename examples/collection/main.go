// Multi-document collection with attribute/value predicates: several
// named XML documents live in one lazy database (the paper's "whole XML
// database ... organized with a tree or many sub-trees" as one super
// document), with queries over everything or scoped to one document.
//
//	go run ./examples/collection
package main

import (
	"fmt"
	"log"

	lazyxml "repro"
)

func main() {
	c := lazyxml.NewCollection(lazyxml.LD, lazyxml.WithAttributes(), lazyxml.WithValues())

	docs := map[string]string{
		"catalog": `<catalog>` +
			`<book id="b1"><title>Lazy Updates</title><price>30</price></book>` +
			`<book id="b2"><title>Structural Joins</title><price>45</price></book>` +
			`</catalog>`,
		"orders": `<orders>` +
			`<order no="1"><item ref="b1"/><qty>2</qty></order>` +
			`<order no="2"><item ref="b2"/><qty>1</qty></order>` +
			`</orders>`,
		"customers": `<customers>` +
			`<customer><name>Ann</name><city>Oslo</city></customer>` +
			`<customer><name>Bob</name><city>Bergen</city></customer>` +
			`</customers>`,
	}
	for name, text := range docs {
		if err := c.Put(name, []byte(text)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("collection: %v (%d documents, %d segments)\n",
		c.Names(), c.Len(), c.DB().Segments())

	// Collection-wide vs document-scoped queries.
	all, _ := c.Query("book//title")
	fmt.Printf("book//title everywhere: %d\n", len(all))
	n, _ := c.CountDoc("catalog", "book//title")
	fmt.Printf("book//title in catalog: %d\n", n)
	n, _ = c.CountDoc("orders", "book//title")
	fmt.Printf("book//title in orders:  %d\n", n)

	// Value and attribute predicates (twig patterns).
	db := c.DB()
	for _, expr := range []string{
		"book[@id='b1']/title",
		"customer[city='Oslo']/name",
		"order[qty='2']/item",
	} {
		n, err := db.CountPattern(expr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s -> %d\n", expr, n)
	}

	// Updates stay per-document: add a book, delete the orders document.
	if _, err := c.Insert("catalog", len("<catalog>"),
		[]byte(`<book id="b3"><title>BOXes</title><price>28</price></book>`)); err != nil {
		log.Fatal(err)
	}
	if err := c.Delete("orders"); err != nil {
		log.Fatal(err)
	}
	n, _ = c.CountDoc("catalog", "catalog/book")
	fmt.Printf("\nafter updates: %d books, documents %v\n", n, c.Names())

	if err := c.DB().CheckConsistency(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("consistency check: ok")
}
