// Durable lazy XML database: every update is written to a checksummed
// write-ahead journal before being applied, and Compact folds the
// journal into a snapshot. Re-running this program picks up exactly
// where it left off — the update log survives restarts with no rebuild.
//
//	go run ./examples/journal [-dir DIR]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	lazyxml "repro"
)

func main() {
	dir := flag.String("dir", filepath.Join(os.TempDir(), "lazyxml-journal-demo"), "database directory")
	flag.Parse()

	j, err := lazyxml.OpenJournal(*dir, lazyxml.LD, []lazyxml.Option{lazyxml.WithValues()})
	if err != nil {
		log.Fatal(err)
	}
	defer j.Close()

	if j.Len() == 0 {
		fmt.Println("fresh database — seeding")
		if _, err := j.Append([]byte("<log></log>")); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Printf("recovered database: %d bytes, %d segments, %d entries so far\n",
			j.Len(), j.Segments(), count(j.DB, "log/entry"))
	}

	// Append a batch of entries (each one journaled, then applied).
	base := count(j.DB, "log/entry")
	for i := 0; i < 5; i++ {
		entry := fmt.Sprintf("<entry><seq>%d</seq></entry>", base+i)
		if _, err := j.Insert(len("<log>"), []byte(entry)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after this run: %d entries, %d segments\n",
		count(j.DB, "log/entry"), j.Segments())

	// Every third run, compact: journal folds into a snapshot.
	if count(j.DB, "log/entry")%15 == 0 {
		if err := j.Compact(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("compacted journal into snapshot")
	}

	if err := j.CheckConsistency(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("consistency check: ok — run me again to see recovery")
}

func count(db *lazyxml.DB, path string) int {
	n, err := db.Count(path)
	if err != nil {
		log.Fatal(err)
	}
	return n
}
