// XMark benchmark walkthrough: build an auction-site store, chop it into
// 100 balanced segments like the paper's third query experiment, and run
// Q1-Q5 with both Lazy-Join and the Stack-Tree-Desc baseline.
//
//	go run ./examples/xmark [-persons N] [-segments N]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	lazyxml "repro"
	"repro/internal/chopper"
	"repro/internal/xmlgen"
)

func main() {
	persons := flag.Int("persons", 2000, "number of person records")
	segments := flag.Int("segments", 100, "number of segments to chop into")
	flag.Parse()

	text := xmlgen.XMark(xmlgen.XMarkConfig{Seed: 2005, Persons: *persons, Items: *persons / 5})
	fmt.Printf("XMark-like document: %.1f MB\n", float64(len(text))/(1<<20))

	ops, err := chopper.Chop(text, *segments, chopper.Balanced, 2005)
	if err != nil {
		log.Fatal(err)
	}
	db := lazyxml.Open(lazyxml.LD)
	t0 := time.Now()
	for _, op := range ops {
		if _, err := db.Insert(op.GP, op.Fragment); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("loaded as %d segments in %v (%d elements)\n",
		db.Segments(), time.Since(t0).Round(time.Millisecond), db.Stats().Elements)

	fmt.Printf("\n%-4s %-20s %10s %12s %12s\n", "", "query", "results", "Lazy-Join", "STD")
	for i, q := range xmlgen.XMarkQueries() {
		tLazy := time.Now()
		lazyMs, err := db.QueryPair(q[0], q[1], lazyxml.Descendant, lazyxml.LazyJoin)
		if err != nil {
			log.Fatal(err)
		}
		dLazy := time.Since(tLazy)

		tSTD := time.Now()
		stdMs, err := db.QueryPair(q[0], q[1], lazyxml.Descendant, lazyxml.STD)
		if err != nil {
			log.Fatal(err)
		}
		dSTD := time.Since(tSTD)

		if len(lazyMs) != len(stdMs) {
			log.Fatalf("Q%d: Lazy-Join %d results, STD %d", i+1, len(lazyMs), len(stdMs))
		}
		fmt.Printf("Q%-3d %-20s %10d %12v %12v\n",
			i+1, q[0]+"//"+q[1], len(lazyMs),
			dLazy.Round(time.Microsecond), dSTD.Round(time.Microsecond))
	}

	// Holistic twig patterns: whole paths in one PathStack pass, with
	// existential predicates.
	fmt.Println("\ntwig patterns (holistic evaluation):")
	for _, expr := range []string{
		"person//watches/watch",
		"person[profile//interest]//watches/watch",
		"site//person[address]//phone",
	} {
		t0 := time.Now()
		n, err := db.CountPattern(expr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-44s %8d  (%v)\n", expr, n, time.Since(t0).Round(time.Microsecond))
	}

	if err := db.CheckConsistency(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nconsistency check: ok")
}
