// On-line registration system: the paper's second motivating workload.
// Every submitted registration form becomes an automatically generated
// XML document of 20-30 elements, inserted into the database as one
// segment.
//
//	go run ./examples/registration
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	lazyxml "repro"
	"repro/internal/xmlgen"
)

func main() {
	r := rand.New(rand.NewSource(42))
	db := lazyxml.Open(lazyxml.LS) // LS: cheapest updates, sort-on-query

	if _, err := db.Append([]byte("<registrations></registrations>")); err != nil {
		log.Fatal(err)
	}
	const open = len("<registrations>")

	// A burst of registrations arrives; each is one segment insertion at
	// the head of the list (newest first).
	const users = 500
	start := time.Now()
	for i := 0; i < users; i++ {
		form := xmlgen.Person(r, i, xmlgen.XMarkConfig{})
		if _, err := db.Insert(open, []byte(form)); err != nil {
			log.Fatal(err)
		}
	}
	insertTime := time.Since(start)

	st := db.Stats()
	fmt.Printf("registered %d users (%d elements) in %v — %.1f µs/registration\n",
		users, st.Elements, insertTime.Round(time.Microsecond),
		float64(insertTime.Microseconds())/users)
	fmt.Printf("update log: %.1f KB for %d segments\n",
		float64(st.SBTreeBytes+st.TagListBytes)/1024, st.Segments)

	// Queries pay the deferred tag-list sort once, then run normally.
	queries := []string{
		"person//phone",
		"person/profile",
		"profile//interest",
		"person//watch",
		"registrations/person",
	}
	for _, q := range queries {
		t0 := time.Now()
		n, err := db.Count(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s -> %6d  (%v)\n", q, n, time.Since(t0).Round(time.Microsecond))
	}

	// A user deletes their account: remove their whole <person> segment.
	ms, err := db.Query("registrations/person")
	if err != nil || len(ms) == 0 {
		log.Fatal("no persons", err)
	}
	victim := ms[0]
	if err := db.Remove(victim.DescStart, victim.DescEnd-victim.DescStart); err != nil {
		log.Fatal(err)
	}
	n, _ := db.Count("registrations/person")
	fmt.Printf("\naccount deletion: %d -> %d persons\n", len(ms), n)

	if err := db.CheckConsistency(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("consistency check: ok")

	// Persist the whole store — update log included, no rebuild needed —
	// and come back up from the snapshot.
	snap := filepath.Join(os.TempDir(), "registrations.snap")
	if err := db.SnapshotFile(snap); err != nil {
		log.Fatal(err)
	}
	restored, err := lazyxml.RestoreFile(snap)
	if err != nil {
		log.Fatal(err)
	}
	n2, _ := restored.Count("registrations/person")
	fmt.Printf("snapshot round-trip: %d persons, %d segments preserved\n",
		n2, restored.Segments())
	os.Remove(snap)
}
