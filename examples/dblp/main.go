// DBLP-style batch updates: the paper's first motivating workload.
// "Almost each day new articles and proceedings need to be added into the
// DBLP database" — instead of relabeling the whole bibliography on every
// publication, each daily batch becomes one segment insertion.
//
//	go run ./examples/dblp
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	lazyxml "repro"
	"repro/internal/xmlgen"
)

func main() {
	r := rand.New(rand.NewSource(2005))
	db := lazyxml.Open(lazyxml.LD)
	if _, err := db.Append([]byte("<dblp></dblp>")); err != nil {
		log.Fatal(err)
	}
	const open = len("<dblp>")

	// Simulate 30 daily batches. Each batch is a handful of new records
	// inserted as segments — no existing element label is ever touched.
	start := time.Now()
	batches, records := 0, 0
	for day := 0; day < 30; day++ {
		for _, frag := range xmlgen.DBLPBatch(r, day, r.Intn(5)+2) {
			if _, err := db.Insert(open, []byte(frag)); err != nil {
				log.Fatal(err)
			}
			records++
		}
		batches++
	}
	elapsed := time.Since(start)

	st := db.Stats()
	fmt.Printf("loaded %d batches (%d records, %d elements) in %v\n",
		batches, records, st.Elements, elapsed.Round(time.Microsecond))
	fmt.Printf("segments: %d; update log: %.1f KB (SB-tree %.1f + tag-list %.1f)\n",
		st.Segments,
		float64(st.SBTreeBytes+st.TagListBytes)/1024,
		float64(st.SBTreeBytes)/1024, float64(st.TagListBytes)/1024)

	// Bibliographic queries over the whole store.
	for _, q := range []string{
		"dblp//author",
		"article/author",
		"proceedings//inproceedings",
		"inproceedings/author",
		"dblp//proceedings//title",
	} {
		n, err := db.Count(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s -> %d\n", q, n)
	}

	// A retraction: remove one article wholesale by offset.
	ms, err := db.Query("article")
	if err != nil || len(ms) == 0 {
		log.Fatal("no articles to retract", err)
	}
	victim := ms[len(ms)/2]
	if err := db.Remove(victim.DescStart, victim.DescEnd-victim.DescStart); err != nil {
		log.Fatal(err)
	}
	after, _ := db.Count("article")
	fmt.Printf("\nretracted one article: %d -> %d articles\n", len(ms), after)

	// "Maintenance hours": collapse everything into one segment.
	if err := db.Rebuild(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after rebuild: %d segment(s), log %.1f KB\n",
		db.Segments(), float64(db.Stats().SBTreeBytes+db.Stats().TagListBytes)/1024)
	if err := db.CheckConsistency(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("consistency check: ok")
}
