package lazyxml

// Snapshot re-seed: how a follower that fell below the compaction
// horizon gets a new base. The records it needs were folded into the
// primary's snapshot and no longer exist as log records, so the primary
// serves the snapshot itself — a consistent (store state, name map)
// pair captured at known sequences — and the follower installs it
// atomically in place of the stale shard, then resumes the record
// stream from the capture's sequences.
//
// Capture happens from the live in-memory state under the collection's
// write lock, never from the on-disk snapshot files: the files are only
// rewritten by Compact and a crash between its two phases can leave a
// docs.snap newer than snapshot.lxml — safe for local replay (the WAL
// fills the gap) but fatal to stream from, since the re-seeded follower
// has no WAL to fill anything with. A live capture is self-consistent
// by construction and costs one buffered snapshot encode.
//
// Install is a staged directory swap. The follower writes the incoming
// snapshot pair plus seq metas into <shard>.reseed/, marks it complete
// (reseed.ready), and only then swaps: shard → <shard>.reseed-old,
// staging → shard, marker removed, old removed. recoverReseed replays
// that sequence on open, so a kill at any step either rolls the swap
// forward (marker present: staging was complete) or discards the
// partial staging — never a half-installed shard.

import (
	"bytes"
	"fmt"
	"path/filepath"

	"repro/internal/faultline"
)

const (
	reseedStagingSuffix = ".reseed"
	reseedOldSuffix     = ".reseed-old"
	reseedMarkerName    = "reseed.ready"
)

// ShardSnapshot is one shard's re-seed payload: the full store snapshot
// and name-map snapshot, and the journal sequences they cover — the
// position the follower resumes the record stream from.
type ShardSnapshot struct {
	Seq    int64
	DocSeq int64
	Snap   []byte // store snapshot (snapshot.lxml encoding)
	Docs   []byte // name map snapshot (docs.snap encoding)
}

// CaptureSnapshot renders the collection's current state as a re-seed
// payload. It holds the collection write lock, so the pair is a single
// consistent cut: every name in Docs refers to a segment in Snap, and
// streaming records after (Seq, DocSeq) reconstructs the primary
// exactly.
func (jc *JournaledCollection) CaptureSnapshot() (*ShardSnapshot, error) {
	jc.cmu.Lock()
	defer jc.cmu.Unlock()
	// A poisoned shard's memory is ahead of its WAL; a re-seed captured
	// from it would propagate unacknowledged writes.
	if err := jc.groupPoisoned(); err != nil {
		return nil, err
	}
	jc.mu.Lock()
	defer jc.mu.Unlock()
	jc.dmu.Lock()
	docSeq := jc.docSeq
	jc.dmu.Unlock()
	jc.j.mu.Lock()
	seq := jc.j.seq
	jc.j.mu.Unlock()
	var snap bytes.Buffer
	if err := jc.db.Snapshot(&snap); err != nil {
		return nil, err
	}
	return &ShardSnapshot{
		Seq:    seq,
		DocSeq: docSeq,
		Snap:   snap.Bytes(),
		Docs:   jc.encodeDocsSnapLocked(),
	}, nil
}

// CaptureShardSnapshot captures shard i's re-seed payload.
func (sc *ShardedCollection) CaptureShardSnapshot(i int) (*ShardSnapshot, error) {
	jc := sc.ShardJournal(i)
	if jc == nil {
		return nil, fmt.Errorf("lazyxml: no journaled shard %d", i)
	}
	return jc.CaptureSnapshot()
}

// InstallReseed replaces shard i's on-disk state with the snapshot pair
// and reopens it. The old shard directory is gone afterwards — the
// follower's own journal history below the snapshot is exactly what the
// horizon already made unreachable. Safe against a kill at any point:
// the swap is staged and recoverReseed finishes or discards it on the
// next open.
func (sc *ShardedCollection) InstallReseed(i int, snap *ShardSnapshot) error {
	if !sc.IsDurable() {
		return fmt.Errorf("lazyxml: re-seed requires a durable collection")
	}
	if i < 0 || i >= len(sc.shards) {
		return fmt.Errorf("lazyxml: no shard %d", i)
	}
	sdir := sc.shardDir(i)
	staging := sdir + reseedStagingSuffix
	old := sdir + reseedOldSuffix
	fs := sc.fs

	// Stage: a complete shard directory next to the real one. The
	// marker is written last, so its presence certifies every data file
	// before it landed in full.
	if err := fs.RemoveAll(staging); err != nil {
		return err
	}
	if err := fs.MkdirAll(staging, 0o755); err != nil {
		return err
	}
	if err := fs.WriteFile(filepath.Join(staging, snapshotName), snap.Snap, 0o644); err != nil {
		return err
	}
	if err := fs.WriteFile(filepath.Join(staging, docsSnapName), snap.Docs, 0o644); err != nil {
		return err
	}
	if err := writeSeqMeta(fs, filepath.Join(staging, seqMetaName), snap.Seq); err != nil {
		return err
	}
	if err := writeSeqMeta(fs, filepath.Join(staging, docsSeqName), snap.DocSeq); err != nil {
		return err
	}
	if sdir == sc.dir {
		// Single-shard layout: the shard directory is the collection
		// root, so the epoch rides along or the swap would lose it.
		if err := writeEpoch(fs, staging, sc.Epoch()); err != nil {
			return err
		}
	}
	if err := fs.WriteFile(filepath.Join(staging, reseedMarkerName), []byte("ok\n"), 0o644); err != nil {
		return err
	}

	// Swap. The old shard's journals are closed first; a kill between
	// any two steps is recovered on the next open.
	sc.mu.Lock()
	oldJC := sc.jcs[i]
	sc.mu.Unlock()
	if oldJC != nil {
		if err := oldJC.Close(); err != nil {
			return err
		}
		// The old store is being replaced wholesale: unpublish its view so
		// no later acquisition resurrects pre-re-seed state. Outstanding
		// view holders keep their snapshot until they Release — they pin
		// memory, never correctness — while new readers route to the fresh
		// store the swap installs below.
		oldJC.DB().Store().InvalidateViews()
	}
	if err := fs.RemoveAll(old); err != nil {
		return err
	}
	if err := fs.Rename(sdir, old); err != nil {
		return err
	}
	if err := fs.Rename(staging, sdir); err != nil {
		return err
	}
	if err := fs.Remove(filepath.Join(sdir, reseedMarkerName)); err != nil {
		return err
	}
	if err := fs.RemoveAll(old); err != nil {
		return err
	}

	jc, err := OpenJournaledCollection(sdir, sc.mode, sc.dbOpts, sc.jOpts...)
	if err != nil {
		return fmt.Errorf("lazyxml: reopening re-seeded shard %d: %w", i, err)
	}
	sc.mu.Lock()
	sc.shards[i] = jc
	sc.jcs[i] = jc
	for name, si := range sc.route {
		if si == i {
			delete(sc.route, name)
		}
	}
	for _, name := range jc.Names() {
		sc.route[name] = i
	}
	qp := sc.planner
	sc.mu.Unlock()
	if qp != nil {
		// The re-seeded shard is a fresh store with a fresh identity; the
		// old shard's cache entries are unreachable by key and age out.
		jc.EnablePlanner(qp)
	}
	return nil
}

// recoverReseed finishes or discards an interrupted re-seed swap before
// a shard directory is opened. The marker file is the commit point:
// staging with a marker rolls forward, staging without one is torn and
// discarded, a renamed-away shard with no complete staging rolls back.
func recoverReseed(fs faultline.FS, sdir string) error {
	staging := sdir + reseedStagingSuffix
	old := sdir + reseedOldSuffix
	exists := func(p string) bool { _, err := fs.Stat(p); return err == nil }

	if exists(filepath.Join(sdir, reseedMarkerName)) {
		// Killed after the staging dir became the shard: finish up.
		if err := fs.Remove(filepath.Join(sdir, reseedMarkerName)); err != nil {
			return err
		}
		return fs.RemoveAll(old)
	}
	if exists(filepath.Join(staging, reseedMarkerName)) {
		if !exists(sdir) {
			// Killed mid-swap with a complete staging: roll forward.
			if err := fs.Rename(staging, sdir); err != nil {
				return err
			}
			if err := fs.Remove(filepath.Join(sdir, reseedMarkerName)); err != nil {
				return err
			}
			return fs.RemoveAll(old)
		}
		// Complete staging but the swap never started: discard it; the
		// follower will request a fresh re-seed if it still needs one.
		return fs.RemoveAll(staging)
	}
	if exists(staging) {
		// Torn staging (no marker): discard.
		if err := fs.RemoveAll(staging); err != nil {
			return err
		}
	}
	if !exists(sdir) && exists(old) {
		// Shard renamed away but nothing complete to replace it: the
		// old state is still the real state.
		return fs.Rename(old, sdir)
	}
	return fs.RemoveAll(old)
}
