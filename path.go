package lazyxml

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/join"
	"repro/internal/twig"
)

// Tuple is one complete match of a multi-step path: one element per
// step, outermost first, as returned by QueryTwig.
type Tuple = twig.Tuple

// QueryTwig evaluates a path expression holistically with PathStack
// (Bruno et al., SIGMOD 2002): instead of a pipeline of binary joins, all
// steps are matched in one synchronized pass, and every result is a full
// tuple binding one element per step. Element positions in the tuples
// are global.
func (db *DB) QueryTwig(path string) ([]Tuple, error) {
	p, err := ParsePath(path)
	if err != nil {
		return nil, err
	}
	v := db.store.AcquireView()
	defer v.Release()
	return queryTwigOn(v, p)
}

// queryTwigOn runs PathStack over a parsed path against any read engine.
func queryTwigOn(eng queryEngine, p Path) ([]Tuple, error) {
	steps := make([]twig.Step, 0, 1+len(p.Steps))
	steps = append(steps, twig.Step{Nodes: eng.GlobalElements(p.First)})
	for _, st := range p.Steps {
		steps = append(steps, twig.Step{Axis: st.Axis, Nodes: eng.GlobalElements(st.Tag)})
	}
	return twig.PathStack(steps)
}

// Path is a parsed path expression: a first tag followed by axis steps.
type Path struct {
	First string
	Steps []PathStep
}

// PathStep is one step of a path expression.
type PathStep struct {
	Axis Axis
	Tag  string
}

// String renders the path back to its textual form.
func (p Path) String() string {
	var sb strings.Builder
	sb.WriteString(p.First)
	for _, s := range p.Steps {
		if s.Axis == Descendant {
			sb.WriteString("//")
		} else {
			sb.WriteString("/")
		}
		sb.WriteString(s.Tag)
	}
	return sb.String()
}

// ParsePath parses expressions of the form "a//b/c". A leading "/" or
// "//" is accepted and ignored (the first step matches elements with the
// tag anywhere in the document, as in the paper's experiments).
func ParsePath(expr string) (Path, error) {
	s := strings.TrimSpace(expr)
	s = strings.TrimPrefix(s, "//")
	s = strings.TrimPrefix(s, "/")
	if s == "" {
		return Path{}, fmt.Errorf("lazyxml: empty path expression %q", expr)
	}
	var p Path
	i := 0
	readTag := func() (string, error) {
		start := i
		for i < len(s) && s[i] != '/' {
			i++
		}
		tag := s[start:i]
		if tag == "" || strings.ContainsAny(tag, " \t<>[]='\"") {
			// Bracketed predicates belong to ParsePattern/QueryPattern.
			return "", fmt.Errorf("lazyxml: invalid tag %q in path %q", tag, expr)
		}
		return tag, nil
	}
	tag, err := readTag()
	if err != nil {
		return Path{}, err
	}
	p.First = tag
	for i < len(s) {
		axis := Child
		if strings.HasPrefix(s[i:], "//") {
			axis = Descendant
			i += 2
		} else {
			i++
		}
		tag, err := readTag()
		if err != nil {
			return Path{}, err
		}
		p.Steps = append(p.Steps, PathStep{Axis: axis, Tag: tag})
	}
	return p, nil
}

// evalPathOn evaluates a parsed path against any read engine — the live
// store or an immutable view.
func evalPathOn(eng queryEngine, alg Algorithm, p Path) ([]Match, error) {
	if len(p.Steps) == 0 {
		// Single step: return every element with the tag.
		nodes := eng.GlobalElements(p.First)
		out := make([]Match, len(nodes))
		for i, n := range nodes {
			out[i] = Match{Desc: n.Ref, DescStart: n.Start, DescEnd: n.End}
		}
		return out, nil
	}
	// First binary join with the configured algorithm.
	ms, err := eng.Query(p.First, p.Steps[0].Tag, p.Steps[0].Axis, alg)
	if err != nil {
		return nil, err
	}
	return continuePipelineOn(eng, ms, p.Steps[1:]), nil
}

// continuePipelineOn runs the later steps of a path over the first
// join's matches: each step deduplicates the descendant frontier and
// joins it against the next tag's global element list with
// Stack-Tree-Desc. The planned executor reuses it after running the
// first join with whatever algorithm the plan chose.
func continuePipelineOn(eng queryEngine, ms []Match, steps []PathStep) []Match {
	for _, step := range steps {
		frontier := dedupeDescendants(ms)
		dlist := eng.GlobalElements(step.Tag)
		pairs := join.StackTreeDesc(frontier, dlist, step.Axis)
		ms = make([]Match, len(pairs))
		for i, pr := range pairs {
			// Global positions of both sides are re-resolved below from
			// the node lists that produced the pairs.
			ms[i] = Match{Anc: pr.Anc, Desc: pr.Desc}
		}
		ms = resolveGlobals(ms, frontier, dlist)
	}
	return ms
}

// dedupeDescendants turns the descendant side of the matches into a
// sorted, duplicate-free node list for the next join step.
func dedupeDescendants(ms []Match) []join.Node {
	seen := map[join.ElemRef]Match{}
	for _, m := range ms {
		seen[m.Desc] = m
	}
	nodes := make([]join.Node, 0, len(seen))
	for ref, m := range seen {
		nodes = append(nodes, join.Node{Start: m.DescStart, End: m.DescEnd, Level: ref.Level, Ref: ref})
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Start < nodes[j].Start })
	return nodes
}

// resolveGlobals fills in the global positions of pair members by looking
// them up in the node lists that produced them.
func resolveGlobals(ms []Match, alist, dlist []join.Node) []Match {
	pos := make(map[join.ElemRef][2]int, len(alist)+len(dlist))
	for _, n := range alist {
		pos[n.Ref] = [2]int{n.Start, n.End}
	}
	for _, n := range dlist {
		pos[n.Ref] = [2]int{n.Start, n.End}
	}
	for i := range ms {
		if p, ok := pos[ms[i].Anc]; ok {
			ms[i].AncStart, ms[i].AncEnd = p[0], p[1]
		}
		if p, ok := pos[ms[i].Desc]; ok {
			ms[i].DescStart, ms[i].DescEnd = p[0], p[1]
		}
	}
	return ms
}
