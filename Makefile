GO ?= go

.PHONY: verify vet build test race bench bench-shards bench-repl bench-compact bench-plan bench-mvcc bench-stream bench-ingest

# The standard pre-merge gate: vet, build, race-enabled tests.
verify:
	./scripts/verify.sh

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# Mixed read/write throughput through the real daemon: 1 shard vs 4.
bench-shards:
	./scripts/bench_shards.sh

# Bulk ingest over HTTP vs the binary protocol, plus a live follower's
# replication lag readout.
bench-repl:
	./scripts/bench_repl.sh

# Query p99 with the maintenance controller off vs on under a sustained
# write mix; records BENCH_compact.json.
bench-compact:
	./scripts/bench_compact.sh

# Zipf-skewed query mix with the cost-based planner + result cache vs
# fixed-algorithm lanes; records BENCH_plan.json.
bench-plan:
	./scripts/bench_plan.sh

# Read p50/p99 under a compact storm: lock-free MVCC snapshot views vs
# the pre-MVCC gated baseline; records BENCH_mvcc.json.
bench-mvcc:
	./scripts/bench_mvcc.sh

# Peak live heap + time-to-first-row on a ~100k-match scan: streamed
# iterator pipeline vs materialized Query; records BENCH_stream.json.
bench-stream:
	./scripts/bench_stream.sh

# Sustained writes/s at equal durability (sync on ack): per-op fsync
# baseline vs the group-commit lane; records BENCH_ingest.json.
bench-ingest:
	./scripts/bench_ingest.sh
