GO ?= go

.PHONY: verify vet build test race bench

# The standard pre-merge gate: vet, build, race-enabled tests.
verify:
	./scripts/verify.sh

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem
