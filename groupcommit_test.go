package lazyxml

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/faultline"
)

// Group-commit test surface (DESIGN.md §15). Three pillars:
//
//   - a crash-point matrix over every mutating file operation of a
//     batched append (dropped and torn), proving all-or-prefix recovery
//     with no acknowledged write lost;
//   - an oracle-equivalence property: the same op stream produces
//     byte-identical documents and query results whether it ran batched
//     or record-at-a-time;
//   - a latency soak: a fixed arrival rate against commit-window sweeps
//     with bounded ack latency and no starved waiter.

// gcOpen opens a group-commit, sync-on-ack collection in dir.
func gcOpen(t *testing.T, dir string, window time.Duration, extra ...JournalOption) *JournaledCollection {
	t.Helper()
	opts := append([]JournalOption{WithSync(), WithGroupCommit(window)}, extra...)
	jc, err := OpenJournaledCollection(dir, LD, nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return jc
}

// TestGroupCommitBasic drives concurrent writers through one commit lane
// and checks results, durability across reopen, and the lane counters.
func TestGroupCommitBasic(t *testing.T) {
	dir := t.TempDir()
	jc := gcOpen(t, dir, 2*time.Millisecond)
	const writers = 24
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = jc.Put(fmt.Sprintf("doc-%02d", i), []byte(seedDocA))
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	// Duplicate puts and unknown deletes must fail individually without
	// poisoning the batch they rode in.
	var dupErr, delErr, okErr error
	wg.Add(3)
	go func() { defer wg.Done(); dupErr = jc.Put("doc-00", []byte(seedDocB)) }()
	go func() { defer wg.Done(); delErr = jc.Delete("no-such-doc") }()
	go func() { defer wg.Done(); okErr = jc.Put("doc-ok", []byte(seedDocB)) }()
	wg.Wait()
	if dupErr == nil || delErr == nil {
		t.Fatalf("invalid ops succeeded through the lane: dup=%v del=%v", dupErr, delErr)
	}
	if okErr != nil {
		t.Fatalf("valid op failed alongside invalid batchmates: %v", okErr)
	}
	if _, err := jc.Insert("doc-00", 6, []byte(insFrag)); err != nil {
		t.Fatalf("insert through lane: %v", err)
	}
	st := jc.CommitLaneStats()
	if !st.Enabled || st.Ops < writers+4 || st.Batches == 0 {
		t.Fatalf("lane stats implausible: %+v", st)
	}
	if st.Batches >= st.Ops {
		t.Fatalf("no batching happened: %d batches for %d ops", st.Batches, st.Ops)
	}
	if err := jc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if err := jc.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenJournaledCollection(dir, LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := re.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if got := re.Len(); got != writers+1 {
		t.Fatalf("reopened with %d docs, want %d", got, writers+1)
	}
	textIsOneOf(t, re, "doc-00", 0, seedDocA[:6]+insFrag+seedDocA[6:])
	textIsOneOf(t, re, "doc-ok", 0, seedDocB)
}

// TestGroupCommitBatchCrashMatrix is the batched-append crash matrix:
// the whole batch flushes through four mutating file operations (segment
// write, segment fsync, name write, name fsync) and the matrix makes
// each of them, in turn, the moment the process dies — once dropping the
// failing write, once tearing it. The invariants after reopen: the store
// is consistent, every op acknowledged before the crash is present, and
// every document is in a legal all-or-prefix state.
func TestGroupCommitBatchCrashMatrix(t *testing.T) {
	const m = 8 // concurrent puts per batch, plus one insert
	type opResult struct {
		name string // "" for the insert op
		err  error
	}
	runBatch := func(jc *JournaledCollection) []opResult {
		res := make([]opResult, m+1)
		var wg sync.WaitGroup
		for i := 0; i < m; i++ {
			i := i
			res[i].name = fmt.Sprintf("batch-%d", i)
			wg.Add(1)
			go func() {
				defer wg.Done()
				res[i].err = jc.Put(res[i].name, []byte(newDoc))
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := jc.Insert("a", 6, []byte(insFrag))
			res[m].err = err
		}()
		wg.Wait()
		return res
	}

	// Sizing run: count the batch flush's mutating operations fault-free.
	dir := t.TempDir()
	seedCrashDir(t, dir)
	ffs := faultline.NewFaultFS(nil)
	jc := gcOpen(t, dir, 50*time.Millisecond, WithFS(ffs))
	if err := jc.Put("acked", []byte(newDoc)); err != nil {
		t.Fatal(err)
	}
	base := ffs.Mutations()
	for _, r := range runBatch(jc) {
		if r.err != nil {
			t.Fatalf("fault-free batch op failed: %v", r.err)
		}
	}
	n := ffs.Mutations() - base
	jc.Close()
	if n == 0 {
		t.Fatal("batched append performed no mutating I/O; the matrix is empty")
	}

	for _, torn := range []bool{false, true} {
		torn := torn
		mode := "drop"
		if torn {
			mode = "torn"
		}
		for k := int64(1); k <= n; k++ {
			k := k
			t.Run(fmt.Sprintf("%s/k=%d", mode, k), func(t *testing.T) {
				dir := t.TempDir()
				seedCrashDir(t, dir)
				ffs := faultline.NewFaultFS(nil)
				if torn {
					ffs.TornWrites()
				}
				jc := gcOpen(t, dir, 50*time.Millisecond, WithFS(ffs))
				// One fully acknowledged batch before the crash: its write
				// must never be lost.
				if err := jc.Put("acked", []byte(newDoc)); err != nil {
					t.Fatalf("pre-crash put: %v", err)
				}
				ffs.CrashAfter(ffs.Mutations() + k)
				res := runBatch(jc)
				if !ffs.Crashed() {
					t.Fatalf("crash point did not fire")
				}
				failed := 0
				for _, r := range res {
					if r.err != nil {
						failed++
						if !errors.Is(r.err, faultline.ErrInjected) {
							t.Fatalf("op failed with a non-injected error: %v", r.err)
						}
					}
				}
				if failed == 0 {
					t.Fatal("every batch op was acknowledged across a crash")
				}
				jc.Close()

				re, err := OpenJournaledCollection(dir, LD, nil)
				if err != nil {
					t.Fatalf("reopen after crash corrupted the store: %v", err)
				}
				if err := re.CheckConsistency(); err != nil {
					t.Fatalf("reopened store inconsistent: %v", err)
				}
				// No acked write lost: the pre-crash batch and any op the
				// crashed batch did acknowledge must be present.
				textIsOneOf(t, re, "acked", k, newDoc)
				for _, r := range res[:m] {
					got, terr := re.Text(r.name)
					if r.err == nil && terr != nil {
						t.Fatalf("k=%d: acked put %q lost after reopen: %v", k, r.name, terr)
					}
					// All-or-prefix: a doc that did survive is whole.
					if terr == nil && !bytes.Equal(got, []byte(newDoc)) {
						t.Fatalf("k=%d: doc %q reopened as %q — a torn document", k, r.name, got)
					}
				}
				afterInsert := seedDocA[:6] + insFrag + seedDocA[6:]
				if res[m].err == nil {
					textIsOneOf(t, re, "a", k, afterInsert)
				} else {
					textIsOneOf(t, re, "a", k, seedDocA, afterInsert)
				}
				if _, err := re.Count("load//item"); err != nil {
					t.Fatalf("query after reopen: %v", err)
				}
				// The reopened store accepts writes and closes cleanly.
				if err := re.Put("post-crash", []byte(newDoc)); err != nil {
					t.Fatalf("write after reopen: %v", err)
				}
				if err := re.Close(); err != nil {
					t.Fatalf("close after reopen: %v", err)
				}
			})
		}
	}
}

// TestGroupCommitPoison pins the failed-flush contract: every waiter of
// the failed batch gets the error, the batch's effects never become
// visible, later writes are refused, and Compact/CaptureSnapshot refuse
// to fold the poisoned memory state into a snapshot.
func TestGroupCommitPoison(t *testing.T) {
	boom := errors.New("disk full")
	dir := t.TempDir()
	seedCrashDir(t, dir)
	ffs := faultline.NewFaultFS(nil)
	jc := gcOpen(t, dir, 10*time.Millisecond, WithFS(ffs))
	defer jc.Close()
	preNames := jc.Names()
	ffs.FailOp(faultline.OpWrite, "journal.wal", boom, 0)

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = jc.Put(fmt.Sprintf("poison-%d", i), []byte(newDoc))
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("waiter %d: got %v, want the injected flush error", i, err)
		}
	}
	// The failed batch is invisible: readers still see exactly the
	// pre-batch documents.
	if got := jc.Names(); !equalStrings(got, preNames) {
		t.Fatalf("failed batch leaked into reads: %v vs %v", got, preNames)
	}
	textIsOneOf(t, jc, "a", 0, seedDocA)
	if err := jc.Put("after-poison", []byte(newDoc)); err == nil {
		t.Fatal("write accepted on a poisoned shard")
	}
	if err := jc.Compact(); err == nil {
		t.Fatal("compact folded a poisoned shard into a snapshot")
	}
	if _, err := jc.CaptureSnapshot(); err == nil {
		t.Fatal("re-seed capture served a poisoned shard")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// equivOp is one deterministic step of a worker's document history.
type equivOp struct {
	kind int // 0 put (fresh), 1 insert, 2 remove-element, 3 delete+reput
	frag string
}

// equivScript derives worker w's op sequence from a fixed seed, so the
// batched and unbatched executions replay the identical stream.
func equivScript(w, rounds int) []equivOp {
	rng := rand.New(rand.NewSource(int64(1000 + w)))
	ops := make([]equivOp, 0, rounds)
	for r := 0; r < rounds; r++ {
		switch rng.Intn(4) {
		case 0:
			ops = append(ops, equivOp{kind: 1, frag: fmt.Sprintf("<item n=\"w%dr%d\"/>", w, r)})
		case 1:
			ops = append(ops, equivOp{kind: 2})
		case 2:
			ops = append(ops, equivOp{kind: 3})
		default:
			ops = append(ops, equivOp{kind: 1, frag: fmt.Sprintf("<x v=\"%d\"/>", rng.Intn(100))})
		}
	}
	return ops
}

// applyEquivOp applies one op. All inserts and removals target offset 6,
// so the elements starting there behave as a stack; depth tracks how
// many elements remain poppable, keeping the stream deterministic and
// identical between the batched and oracle executions.
func applyEquivOp(jc *JournaledCollection, name string, op equivOp, depth *int) error {
	switch op.kind {
	case 1:
		if _, err := jc.Insert(name, 6, []byte(op.frag)); err != nil {
			return err
		}
		*depth++
	case 2:
		if *depth == 0 {
			return nil
		}
		if err := jc.RemoveElementAt(name, 6); err != nil {
			return err
		}
		*depth--
	case 3:
		if err := jc.Delete(name); err != nil {
			return err
		}
		if err := jc.Put(name, []byte(seedDocA)); err != nil {
			return err
		}
		*depth = 2
	}
	return nil
}

// TestGroupCommitEquivalence is the oracle-equivalence property: the
// same per-document op streams, run concurrently through group commit
// and serially through the record-at-a-time path, are indistinguishable
// — identical texts, names, and structural-join results at every
// checkpoint, with compaction ticking in the middle of the batched run.
func TestGroupCommitEquivalence(t *testing.T) {
	const workers = 8
	rounds := 40
	if testing.Short() {
		rounds = 10
	}

	subject := gcOpen(t, t.TempDir(), time.Millisecond)
	defer subject.Close()
	oracle, err := OpenJournaledCollection(t.TempDir(), LD, nil, WithSync())
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()

	scripts := make([][]equivOp, workers)
	sDepth := make([]int, workers)
	oDepth := make([]int, workers)
	for w := 0; w < workers; w++ {
		scripts[w] = equivScript(w, rounds)
		sDepth[w], oDepth[w] = 2, 2 // seedDocA starts with two items at the stack offset
		name := fmt.Sprintf("w%d", w)
		if err := subject.Put(name, []byte(seedDocA)); err != nil {
			t.Fatal(err)
		}
		if err := oracle.Put(name, []byte(seedDocA)); err != nil {
			t.Fatal(err)
		}
	}

	checkpoints := 4
	perCheckpoint := rounds / checkpoints
	for cp := 0; cp < checkpoints; cp++ {
		lo, hi := cp*perCheckpoint, (cp+1)*perCheckpoint
		var wg sync.WaitGroup
		workerErr := make([]error, workers)
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				name := fmt.Sprintf("w%d", w)
				for _, op := range scripts[w][lo:hi] {
					if err := applyEquivOp(subject, name, op, &sDepth[w]); err != nil {
						workerErr[w] = err
						return
					}
				}
			}()
		}
		// Maintenance ticks while the batched writers run: compaction and
		// collapse must neither deadlock with the lane nor perturb state.
		if cp == 1 {
			if err := subject.Compact(); err != nil {
				t.Fatalf("compact during batched run: %v", err)
			}
		}
		if cp == 2 {
			if _, err := subject.Collapse("w0"); err != nil {
				t.Fatalf("collapse during batched run: %v", err)
			}
		}
		wg.Wait()
		for w, err := range workerErr {
			if err != nil {
				t.Fatalf("checkpoint %d worker %d: %v", cp, w, err)
			}
		}
		// The oracle replays the same window serially, worker-major — the
		// documents are disjoint, so the end state must match exactly.
		for w := 0; w < workers; w++ {
			name := fmt.Sprintf("w%d", w)
			for _, op := range scripts[w][lo:hi] {
				if err := applyEquivOp(oracle, name, op, &oDepth[w]); err != nil {
					t.Fatalf("oracle worker %d: %v", w, err)
				}
			}
		}
		if got, want := subject.Names(), oracle.Names(); !equalStrings(got, want) {
			t.Fatalf("checkpoint %d: names diverged: %v vs %v", cp, got, want)
		}
		for w := 0; w < workers; w++ {
			name := fmt.Sprintf("w%d", w)
			st, err1 := subject.Text(name)
			ot, err2 := oracle.Text(name)
			if err1 != nil || err2 != nil {
				t.Fatalf("checkpoint %d: text(%s): %v / %v", cp, name, err1, err2)
			}
			if !bytes.Equal(st, ot) {
				t.Fatalf("checkpoint %d: doc %s diverged:\n batched: %s\n oracle:  %s", cp, name, st, ot)
			}
		}
		sn, err1 := subject.Count("load//item")
		on, err2 := oracle.Count("load//item")
		if err1 != nil || err2 != nil || sn != on {
			t.Fatalf("checkpoint %d: join results diverged: %d (%v) vs %d (%v)", cp, sn, err1, on, err2)
		}
	}
	if err := subject.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitLatencySoak holds a fixed arrival rate against a sweep
// of commit windows: every waiter must complete (none starved), ack
// latency stays bounded, and the lane counters account for exactly the
// ops issued.
func TestGroupCommitLatencySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("latency soak skipped in -short")
	}
	const (
		writers  = 16
		interval = 4 * time.Millisecond // per-writer arrival rate
		perSweep = 10 * time.Second
		p99Bound = 1 * time.Second
	)
	for _, window := range []time.Duration{0, time.Millisecond, 5 * time.Millisecond} {
		window := window
		t.Run(fmt.Sprintf("window=%s", window), func(t *testing.T) {
			jc := gcOpen(t, t.TempDir(), window)
			defer jc.Close()
			var (
				mu   sync.Mutex
				lats []time.Duration
			)
			var issued int64
			var wg sync.WaitGroup
			deadline := time.Now().Add(perSweep)
			for w := 0; w < writers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					name := fmt.Sprintf("s%d", w)
					if err := jc.Put(name, []byte(seedDocA)); err != nil {
						t.Errorf("writer %d seed: %v", w, err)
						return
					}
					var local []time.Duration
					n := int64(1)
					for i := 0; time.Now().Before(deadline); i++ {
						start := time.Now()
						_, err := jc.Insert(name, 6, []byte(insFrag))
						lat := time.Since(start)
						if err != nil {
							t.Errorf("writer %d op %d: %v", w, i, err)
							return
						}
						local = append(local, lat)
						n++
						// Fixed arrival rate: sleep out the remainder of the
						// interval, so batching comes from overlap, not from
						// saturating the lane.
						if rest := interval - lat; rest > 0 {
							time.Sleep(rest)
						}
					}
					mu.Lock()
					lats = append(lats, local...)
					issued += n
					mu.Unlock()
				}()
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			if len(lats) == 0 {
				t.Fatal("soak issued no ops")
			}
			p50 := lats[len(lats)*50/100]
			p99 := lats[len(lats)*99/100]
			max := lats[len(lats)-1]
			t.Logf("window=%s ops=%d p50=%s p99=%s max=%s", window, len(lats), p50, p99, max)
			if p99 > p99Bound {
				t.Fatalf("p99 ack latency %s exceeds bound %s", p99, p99Bound)
			}
			st := jc.CommitLaneStats()
			if st.Ops != issued {
				t.Fatalf("lane accounted %d ops, %d were issued — a starved or double-counted waiter", st.Ops, issued)
			}
			if st.Batches == 0 || st.MaxBatch < 1 {
				t.Fatalf("lane stats implausible after soak: %+v", st)
			}
			if err := jc.CheckConsistency(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
