package lazyxml

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/stream"
	"repro/internal/xmlgen"
)

// drainStream pulls rs to exhaustion and returns the matches.
func drainStream(t *testing.T, rs *ResultStream) []Match {
	t.Helper()
	var out []Match
	for {
		m, err := rs.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("stream Next: %v", err)
		}
		out = append(out, m)
	}
}

// matchList renders matches order-sensitively — streaming must preserve
// not just the match set but the exact order of the materialized path.
func matchList(ms []Match) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = fmt.Sprintf("%d-%d|%d-%d", m.AncStart, m.AncEnd, m.DescStart, m.DescEnd)
	}
	return out
}

func diffLists(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: %d matches, want %d", label, len(got), len(want))
		return
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("%s: match %d = %s, want %s (order or content diverged)", label, i, got[i], want[i])
			return
		}
	}
}

func liveViews(b Backend) int {
	total := 0
	for _, st := range b.ViewStats() {
		total += st.Views.Live
	}
	return total
}

// assertViewsReleased proves no stream kept a view reference: a write
// per shard retires each published view at the next acquisition, so
// after one rotation the only live views are the freshly published ones
// — unless a closed stream leaked its pin, which keeps the old
// generation retained.
func assertViewsReleased(t *testing.T, b Backend) {
	t.Helper()
	touched := map[int]bool{}
	for _, name := range b.Names() {
		si := b.ShardOf(name)
		if touched[si] {
			continue
		}
		touched[si] = true
		if _, err := b.Insert(name, len("<root>"), []byte("<zz/>")); err != nil {
			t.Fatal(err)
		}
	}
	cv, err := b.ViewAll()
	if err != nil {
		t.Fatal(err)
	}
	cv.Release()
	if n := liveViews(b); n > b.ShardCount() {
		t.Fatalf("%d live views after rotation (at most %d published expected): a stream leaked its view pin", n, b.ShardCount())
	}
}

// buildStreamCollection seeds a collection with random fragmented
// documents, the same shape the planner equivalence test uses.
func buildStreamCollection(t *testing.T, seed int64) *Collection {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	c := NewCollection(LD)
	c.EnablePlanner(NewQueryPlanner(1 << 20))
	frags := []string{"<a><b><c/></b></a>", "<b><c><d/></c></b>", "<a><b/><c/></a>", "<c><d/></c>"}
	for d := 0; d < 2+r.Intn(3); d++ {
		text := xmlgen.Synthetic(xmlgen.SyntheticConfig{
			Seed: seed*100 + int64(d), Elements: 80 + r.Intn(120),
		})
		if err := c.Put(fmt.Sprintf("doc-%d", d), text); err != nil {
			t.Fatal(err)
		}
	}
	names := c.Names()
	for i := 0; i < 5+r.Intn(20); i++ {
		name := names[r.Intn(len(names))]
		if _, err := c.Insert(name, len("<root>"), []byte(frags[r.Intn(len(frags))])); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestStreamEquivalenceProperty is the streaming correctness property:
// for every algorithm the planner can force — all six joins plus the
// holistic twig — and for the unplanned path, a streamed query returns
// exactly the matches of its materialized counterpart, in exactly the
// same order, over random fragmented documents.
func TestStreamEquivalenceProperty(t *testing.T) {
	paths := []string{"a", "a//b", "a/b", "b//c", "a//b//c", "a//b/c", "b//c//d"}
	algos := []string{"auto", "lazy", "parallel", "std", "skip", "sta", "xb", "twig"}
	for seed := int64(1); seed <= 3; seed++ {
		c := buildStreamCollection(t, seed)
		for _, path := range paths {
			// Unplanned lane: QueryStream(Planned: false) vs Query.
			oracle, err := c.Query(path)
			if err != nil {
				t.Fatal(err)
			}
			rs, err := c.QueryStream(path, StreamOpt{})
			if err != nil {
				t.Fatal(err)
			}
			diffLists(t, fmt.Sprintf("seed %d path %s unplanned", seed, path), matchList(oracle), matchList(drainStream(t, rs)))
			if err := rs.Close(); err != nil {
				t.Fatal(err)
			}
			// Planned lanes, one per forced algorithm. NoCache on both
			// sides so every run actually executes.
			for _, algo := range algos {
				force, err := ParsePlanAlgo(algo)
				if err != nil {
					t.Fatal(err)
				}
				want, _, err := c.QueryPlanned(path, PlanOpt{Force: force, NoCache: true})
				if err != nil {
					t.Fatal(err)
				}
				rs, err := c.QueryStream(path, StreamOpt{Planned: true, Force: force, NoCache: true})
				if err != nil {
					t.Fatalf("seed %d %s algo %s: %v", seed, path, algo, err)
				}
				got := drainStream(t, rs)
				label := fmt.Sprintf("seed %d path %s algo %s", seed, path, algo)
				if len(rs.Plans()) != 1 {
					t.Fatalf("%s: %d plans", label, len(rs.Plans()))
				}
				diffLists(t, label, matchList(want), matchList(got))
				if err := rs.Close(); err != nil {
					t.Fatal(err)
				}
			}
		}
		assertViewsReleased(t, c)
	}
}

// TestStreamDocScopedEquivalence checks the document-scoped lane,
// including the span filter, against QueryDocPlanned.
func TestStreamDocScopedEquivalence(t *testing.T) {
	c := buildStreamCollection(t, 7)
	for _, name := range c.Names() {
		for _, path := range []string{"a//b", "b//c"} {
			want, _, err := c.QueryDocPlanned(name, path, PlanOpt{NoCache: true})
			if err != nil {
				t.Fatal(err)
			}
			rs, err := c.QueryDocStream(name, path, StreamOpt{Planned: true, NoCache: true})
			if err != nil {
				t.Fatal(err)
			}
			diffLists(t, fmt.Sprintf("doc %s path %s", name, path), matchList(want), matchList(drainStream(t, rs)))
			rs.Close()
		}
	}
	if _, err := c.QueryDocStream("no-such-doc", "a//b", StreamOpt{}); err == nil {
		t.Fatal("unknown document accepted")
	}
	assertViewsReleased(t, c)
}

// TestStreamEquivalenceUnderWriters is the MVCC isolation property: a
// stream opened before a burst of writers delivers exactly the
// snapshot-time result, however slowly it is drained.
func TestStreamEquivalenceUnderWriters(t *testing.T) {
	c := buildStreamCollection(t, 11)
	const path = "a//b"
	want, _, err := c.QueryPlanned(path, PlanOpt{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := c.QueryStream(path, StreamOpt{Planned: true, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	// Writers start after the stream pinned its view.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		names := c.Names()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := names[i%len(names)]
			if _, err := c.Insert(name, len("<root>"), []byte("<a><b/></a>")); err != nil {
				return
			}
		}
	}()
	var got []Match
	for {
		m, err := rs.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next under writers: %v", err)
		}
		got = append(got, m)
		time.Sleep(50 * time.Microsecond) // drain slowly while writers run
	}
	close(stop)
	wg.Wait()
	diffLists(t, "under writers", matchList(want), matchList(got))
	rs.Close()
	assertViewsReleased(t, c)
}

// TestStreamSingleConsumption pins the consumption discipline on the
// full stack, for every join adapter: after the terminal io.EOF a
// second consumption reports ErrStreamExhausted (never a silent zero
// rows — the janus-datalog failure mode), and Next after Close reports
// ErrStreamClosed.
func TestStreamSingleConsumption(t *testing.T) {
	c := buildStreamCollection(t, 13)
	for _, algo := range []string{"lazy", "parallel", "std", "skip", "sta", "xb", "twig"} {
		force, err := ParsePlanAlgo(algo)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := c.QueryStream("a//b", StreamOpt{Planned: true, Force: force, NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		n := len(drainStream(t, rs))
		if n == 0 {
			t.Fatalf("algo %s: empty result would not exercise the guard", algo)
		}
		if _, err := rs.Next(); !errors.Is(err, ErrStreamExhausted) {
			t.Fatalf("algo %s: Next after EOF = %v, want ErrStreamExhausted", algo, err)
		}
		if err := rs.Close(); err != nil {
			t.Fatalf("algo %s: Close: %v", algo, err)
		}
		if _, err := rs.Next(); !errors.Is(err, ErrStreamClosed) {
			t.Fatalf("algo %s: Next after Close = %v, want ErrStreamClosed", algo, err)
		}
		if err := rs.Close(); err != nil {
			t.Fatalf("algo %s: second Close: %v", algo, err)
		}
	}
	assertViewsReleased(t, c)
}

// TestStreamBudgetExceeded forces a multi-step query's frontier over a
// tiny budget and checks the structured failure plus view release.
func TestStreamBudgetExceeded(t *testing.T) {
	c := buildStreamCollection(t, 17)
	rs, err := c.QueryStream("a//b//c", StreamOpt{Planned: true, NoCache: true, BudgetBytes: matchBytes * 2})
	if err != nil {
		t.Fatal(err)
	}
	var serr error
	for serr == nil {
		_, serr = rs.Next()
	}
	if serr == io.EOF {
		t.Fatal("budgeted stream completed; budget never charged")
	}
	if !errors.Is(serr, ErrStreamBudget) {
		t.Fatalf("stream error = %v, want ErrStreamBudget", serr)
	}
	var be *stream.BudgetError
	if !errors.As(serr, &be) || be.Limit != matchBytes*2 {
		t.Fatalf("budget error detail: %+v", be)
	}
	rs.Close()
	assertViewsReleased(t, c)
}

// TestStreamCancelReleasesView cancels a stream mid-drain and asserts
// the error and that Close returns the pinned view.
func TestStreamCancelReleasesView(t *testing.T) {
	c := buildStreamCollection(t, 19)
	ctx, cancel := context.WithCancel(context.Background())
	rs, err := c.QueryStream("a//b", StreamOpt{Planned: true, NoCache: true, Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Next(); err != nil {
		t.Fatalf("first Next: %v", err)
	}
	cancel()
	var serr error
	for serr == nil {
		_, serr = rs.Next()
	}
	if serr != io.EOF && !errors.Is(serr, context.Canceled) {
		t.Fatalf("after cancel: %v", serr)
	}
	rs.Close()
	assertViewsReleased(t, c)
}

// TestStreamLimitBoundsProduction is the early-termination property:
// Limit=1 against a document with tens of thousands of matches must
// leave production bounded by the batch window, not the result size.
func TestStreamLimitBoundsProduction(t *testing.T) {
	c := NewCollection(LD)
	c.EnablePlanner(NewQueryPlanner(1 << 20))
	// One flat document with many <b/> under one <a>: a//b yields n
	// matches.
	const n = 20000
	doc := make([]byte, 0, 16*n)
	doc = append(doc, "<root><a>"...)
	for i := 0; i < n; i++ {
		doc = append(doc, "<b/>"...)
	}
	doc = append(doc, "</a></root>"...)
	if err := c.Put("big", doc); err != nil {
		t.Fatal(err)
	}
	rs, err := c.QueryStream("a//b", StreamOpt{Planned: true, NoCache: true, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := drainStream(t, rs)
	if len(got) != 1 {
		t.Fatalf("limit=1 delivered %d matches", len(got))
	}
	rs.Close()
	// The producer runs at most a few batch windows ahead of the single
	// delivered match before cancellation lands; the full 20k-match
	// result must never have been generated.
	if p := rs.Produced(); p > 2048 {
		t.Fatalf("limit=1 produced %d matches; early termination is not bounding work", p)
	}
	assertViewsReleased(t, c)
}

// TestStreamCacheTee checks result-cache composition: a small streamed
// result admits to the cache on clean exhaustion (the next stream is a
// hit and pins no view), a limit-truncated stream never admits, and an
// over-cap result bypasses admission.
func TestStreamCacheTee(t *testing.T) {
	c := buildStreamCollection(t, 23)
	qp := NewQueryPlanner(1 << 20)
	c.EnablePlanner(qp)
	const path = "a//b"

	// Truncated: must not admit.
	rs, err := c.QueryStream(path, StreamOpt{Planned: true, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := drainStream(t, rs); len(got) != 1 {
		t.Fatalf("limit drain: %d", len(got))
	}
	rs.Close()
	if st := qp.Stats().Cache; st.Puts != 0 {
		t.Fatalf("truncated stream admitted to cache: %+v", st)
	}

	// Clean exhaustion: admits; the repeat run is a cache hit.
	rs, err = c.QueryStream(path, StreamOpt{Planned: true})
	if err != nil {
		t.Fatal(err)
	}
	want := matchList(drainStream(t, rs))
	rs.Close()
	if st := qp.Stats().Cache; st.Puts != 1 {
		t.Fatalf("clean stream did not admit: %+v", st)
	}
	rs, err = c.QueryStream(path, StreamOpt{Planned: true})
	if err != nil {
		t.Fatal(err)
	}
	got := drainStream(t, rs)
	if !rs.Plans()[0].Cached {
		t.Fatal("repeat stream not served from cache")
	}
	if rs.Produced() != 0 {
		t.Fatalf("cache hit produced %d matches", rs.Produced())
	}
	diffLists(t, "cache hit", want, matchList(got))
	rs.Close()

	// Over the admission cap: streams fine, never admits.
	tiny := NewQueryPlanner(matchBytes * 16) // cap = 2 matches' worth
	c.EnablePlanner(tiny)
	rs, err = c.QueryStream(path, StreamOpt{Planned: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := drainStream(t, rs); len(got) < 3 {
		t.Fatalf("result too small (%d) to exercise the cap", len(got))
	}
	rs.Close()
	if st := tiny.Stats().Cache; st.Puts != 0 {
		t.Fatalf("over-cap stream admitted: %+v", st)
	}
	assertViewsReleased(t, c)
}

// TestStreamSharded checks the sharded merge: per-shard pipelines over
// the consistent cut concatenate in shard order, equivalent to the
// materialized fan-out, with the limit applied across the merge and a
// shard index on every plan.
func TestStreamSharded(t *testing.T) {
	sc := NewShardedCollection(3, LD)
	sc.EnablePlanner(NewQueryPlanner(1 << 20))
	for d := 0; d < 12; d++ {
		text := xmlgen.Synthetic(xmlgen.SyntheticConfig{Seed: int64(500 + d), Elements: 60})
		if err := sc.Put(fmt.Sprintf("doc-%d", d), text); err != nil {
			t.Fatal(err)
		}
	}
	for _, path := range []string{"a//b", "b//c", "a"} {
		want, _, err := sc.QueryPlanned(path, PlanOpt{NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		rs, err := sc.QueryStream(path, StreamOpt{Planned: true, NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(rs.Plans()) != 3 {
			t.Fatalf("%s: %d plans, want one per shard", path, len(rs.Plans()))
		}
		for i, pl := range rs.Plans() {
			if pl.Shard != i {
				t.Fatalf("%s: plan %d has shard %d", path, i, pl.Shard)
			}
		}
		diffLists(t, "sharded "+path, matchList(want), matchList(drainStream(t, rs)))
		rs.Close()

		// Limit across the merge.
		if len(want) > 2 {
			rs, err := sc.QueryStream(path, StreamOpt{Planned: true, NoCache: true, Limit: 2})
			if err != nil {
				t.Fatal(err)
			}
			got := drainStream(t, rs)
			rs.Close()
			diffLists(t, "sharded limit "+path, matchList(want[:2]), matchList(got))
		}
	}
	// Doc-scoped routing.
	name := sc.Names()[0]
	want, _, err := sc.QueryDocPlanned(name, "a//b", PlanOpt{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sc.QueryDocStream(name, "a//b", StreamOpt{Planned: true, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Plans()[0].Shard != sc.ShardOf(name) {
		t.Fatalf("doc plan shard %d, want %d", rs.Plans()[0].Shard, sc.ShardOf(name))
	}
	diffLists(t, "sharded doc", matchList(want), matchList(drainStream(t, rs)))
	rs.Close()
	if _, err := sc.QueryDocStream("no-such", "a", StreamOpt{}); err == nil {
		t.Fatal("unknown doc accepted")
	}
	assertViewsReleased(t, sc)
}

// TestStreamSharedBudgetAcrossShards: one budget spans the whole
// fan-out, so N shards cannot multiply the per-query limit.
func TestStreamSharedBudgetAcrossShards(t *testing.T) {
	sc := NewShardedCollection(3, LD)
	sc.EnablePlanner(NewQueryPlanner(1 << 20))
	for d := 0; d < 9; d++ {
		text := xmlgen.Synthetic(xmlgen.SyntheticConfig{Seed: int64(700 + d), Elements: 120})
		if err := sc.Put(fmt.Sprintf("doc-%d", d), text); err != nil {
			t.Fatal(err)
		}
	}
	rs, err := sc.QueryStream("a//b//c", StreamOpt{Planned: true, NoCache: true, BudgetBytes: matchBytes * 2})
	if err != nil {
		t.Fatal(err)
	}
	var serr error
	for serr == nil {
		_, serr = rs.Next()
	}
	if !errors.Is(serr, ErrStreamBudget) {
		t.Fatalf("sharded budget error = %v, want ErrStreamBudget", serr)
	}
	rs.Close()
	assertViewsReleased(t, sc)
}
