package lazyxml

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/xmlgen"
	"repro/internal/xmltree"
)

// matchSet renders matches as a comparable set of global position pairs.
func matchSet(ms []Match) map[string]bool {
	out := make(map[string]bool, len(ms))
	for _, m := range ms {
		out[fmt.Sprintf("%d-%d|%d-%d", m.AncStart, m.AncEnd, m.DescStart, m.DescEnd)] = true
	}
	return out
}

func diffSets(t *testing.T, label string, want, got map[string]bool) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: %d matches, want %d", label, len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Errorf("%s: missing match %s", label, k)
			return
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("%s: extra match %s", label, k)
			return
		}
	}
}

// TestPlannedEquivalenceProperty is the planner's correctness property:
// over random documents with random fragmentation, every algorithm the
// planner can choose — and the cost-based choice itself — returns the
// same match set as the unplanned query path.
func TestPlannedEquivalenceProperty(t *testing.T) {
	paths := []string{"a", "a//b", "a/b", "b//c", "a//b//c", "a//b/c", "b//c//d"}
	algos := []string{"auto", "lazy", "parallel", "std", "skip", "sta", "xb", "twig"}
	frags := []string{"<a><b><c/></b></a>", "<b><c><d/></c></b>", "<a><b/><c/></a>", "<c><d/></c>"}
	for seed := int64(1); seed <= 4; seed++ {
		r := rand.New(rand.NewSource(seed))
		c := NewCollection(LD)
		c.EnablePlanner(NewQueryPlanner(1 << 20))
		ndocs := 2 + r.Intn(3)
		for d := 0; d < ndocs; d++ {
			text := xmlgen.Synthetic(xmlgen.SyntheticConfig{
				Seed: seed*100 + int64(d), Elements: 80 + r.Intn(120),
			})
			if err := c.Put(fmt.Sprintf("doc-%d", d), text); err != nil {
				t.Fatal(err)
			}
		}
		// Fragment: every insert right after <root> creates a new sibling
		// segment, so the update log grows without risking nesting.
		names := c.Names()
		for i := 0; i < 5+r.Intn(20); i++ {
			name := names[r.Intn(len(names))]
			if _, err := c.Insert(name, len("<root>"), []byte(frags[r.Intn(len(frags))])); err != nil {
				t.Fatal(err)
			}
		}
		if r.Intn(2) == 0 {
			if _, err := c.Collapse(names[0]); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.CheckConsistency(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, path := range paths {
			oracle, err := c.Query(path)
			if err != nil {
				t.Fatal(err)
			}
			want := matchSet(oracle)
			for _, algo := range algos {
				force, err := ParsePlanAlgo(algo)
				if err != nil {
					t.Fatal(err)
				}
				ms, pls, err := c.QueryPlanned(path, PlanOpt{Force: force})
				if err != nil {
					t.Fatalf("seed %d %s algo %s: %v", seed, path, algo, err)
				}
				if len(pls) != 1 {
					t.Fatalf("seed %d %s algo %s: %d plans", seed, path, algo, len(pls))
				}
				diffSets(t, fmt.Sprintf("seed %d path %s algo %s (plan %s)", seed, path, algo, pls[0].Algo), want, matchSet(ms))
			}
		}
	}
}

// TestTagCardinalityOracle checks the tag-list-derived cardinalities
// against a fresh parse of every document.
func TestTagCardinalityOracle(t *testing.T) {
	c := NewCollection(LD)
	for d := 0; d < 4; d++ {
		text := xmlgen.Synthetic(xmlgen.SyntheticConfig{Seed: int64(40 + d), Elements: 150})
		if err := c.Put(fmt.Sprintf("doc-%d", d), text); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Insert("doc-0", len("<root>"), []byte("<a><b/><b/></a>")); err != nil {
		t.Fatal(err)
	}
	oracle := map[string]int{}
	for _, name := range c.Names() {
		text, err := c.Text(name)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := xmltree.Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		doc.Walk(func(e *xmltree.Element) bool {
			oracle[e.Tag]++
			return true
		})
	}
	for _, tag := range []string{"root", "a", "b", "c", "d", "e", "f", "nosuchtag"} {
		if got, want := c.TagCardinality(tag), oracle[tag]; got != want {
			t.Errorf("TagCardinality(%q) = %d, want %d", tag, got, want)
		}
	}
}

// TestTagCardinalitySharded checks the cross-shard sum.
func TestTagCardinalitySharded(t *testing.T) {
	sc := NewShardedCollection(3, LD)
	want := 0
	for d := 0; d < 9; d++ {
		text := []byte("<root><a><b/></a><a/></root>")
		want += 2
		if err := sc.Put(fmt.Sprintf("doc-%d", d), text); err != nil {
			t.Fatal(err)
		}
	}
	if got := sc.TagCardinality("a"); got != want {
		t.Errorf("sharded TagCardinality(a) = %d, want %d", got, want)
	}
}

// TestPlanExplainOutput sanity-checks the explain surface: a planned
// two-step query yields a join op with inputs and a positive cost, and a
// forced run is flagged.
func TestPlanExplainOutput(t *testing.T) {
	c := NewCollection(LD)
	if err := c.Put("d", []byte("<root><a><b/><b/></a></root>")); err != nil {
		t.Fatal(err)
	}
	_, pls, err := c.QueryPlanned("a//b", PlanOpt{})
	if err != nil {
		t.Fatal(err)
	}
	pl := pls[0]
	if pl.Algo == "" || pl.Cost <= 0 || len(pl.Ops) != 1 {
		t.Fatalf("plan = %+v", pl)
	}
	op := pl.Ops[0]
	if op.Op != "join" || op.AncCard != 1 || op.DescCard != 2 {
		t.Fatalf("op = %+v", op)
	}
	force, _ := ParsePlanAlgo("std")
	_, pls, err = c.QueryPlanned("a//b", PlanOpt{Force: force, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if !pls[0].Forced || pls[0].Algo != "std" {
		t.Fatalf("forced plan = %+v", pls[0])
	}
}

// TestCacheGenerationFreshness drives the full write → query → verify
// cycle: after every mutation (insert, remove, collapse) the planned,
// cached query must agree with a fresh unplanned run — the generation
// bump is the only invalidation mechanism in play.
func TestCacheGenerationFreshness(t *testing.T) {
	c := NewCollection(LD)
	qp := NewQueryPlanner(1 << 20)
	c.EnablePlanner(qp)
	if err := c.Put("d", []byte("<root><a><b/></a></root>")); err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		for i := 0; i < 2; i++ { // second run exercises the cached path
			ms, _, err := c.QueryPlanned("a//b", PlanOpt{})
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := c.Query("a//b")
			if err != nil {
				t.Fatal(err)
			}
			diffSets(t, fmt.Sprintf("%s run %d", stage, i), matchSet(fresh), matchSet(ms))
		}
	}
	check("initial")
	if _, err := c.Insert("d", len("<root>"), []byte("<a><b/><b/></a>")); err != nil {
		t.Fatal(err)
	}
	check("after insert")
	if err := c.RemoveElementAt("d", len("<root>")); err != nil {
		t.Fatal(err)
	}
	check("after remove")
	if _, err := c.Collapse("d"); err != nil {
		t.Fatal(err)
	}
	check("after collapse")
	st := qp.Stats()
	if st.Cache.Hits == 0 || st.Cache.Misses == 0 {
		t.Fatalf("cache never exercised both paths: %+v", st.Cache)
	}
}

// TestCacheNoStaleUnderConcurrentWrites hammers one collection with a
// writer (inserts + collapses) and planned readers. Whenever a reader
// observes the same generation before and after its pair of queries, the
// cached planned result and a fresh unplanned result must be identical —
// the race-free formulation of "zero stale results".
func TestCacheNoStaleUnderConcurrentWrites(t *testing.T) {
	c := NewCollection(LD)
	c.EnablePlanner(NewQueryPlanner(1 << 20))
	if err := c.Put("d", []byte("<root><a><b/></a></root>")); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(7))
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if r.Intn(10) == 0 {
				if _, err := c.Collapse("d"); err != nil {
					t.Error(err)
					return
				}
			} else if _, err := c.Insert("d", len("<root>"), []byte("<a><b/></a>")); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	stable := 0
	for i := 0; i < 300; i++ {
		g1 := c.DB().PlanGeneration()
		ms, _, err := c.QueryPlanned("a//b", PlanOpt{})
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := c.Query("a//b")
		if err != nil {
			t.Fatal(err)
		}
		if g2 := c.DB().PlanGeneration(); g1 == g2 {
			stable++
			diffSets(t, fmt.Sprintf("iteration %d gen %v", i, g1), matchSet(fresh), matchSet(ms))
		}
	}
	close(done)
	wg.Wait()
	t.Logf("stable-generation verifications: %d/300", stable)
}

// TestShardedPerShardPartialCache verifies that a fanned-out planned
// query caches one partial result per shard, and that a write to one
// shard invalidates only that shard's entry.
func TestShardedPerShardPartialCache(t *testing.T) {
	const shards = 4
	sc := NewShardedCollection(shards, LD)
	qp := NewQueryPlanner(1 << 20)
	sc.EnablePlanner(qp)
	// Place documents until every shard holds at least one.
	perShard := map[int]string{}
	for d := 0; len(perShard) < shards; d++ {
		name := fmt.Sprintf("doc-%d", d)
		if err := sc.Put(name, []byte("<root><a><b/></a></root>")); err != nil {
			t.Fatal(err)
		}
		si := sc.ShardOf(name)
		if _, ok := perShard[si]; !ok {
			perShard[si] = name
		}
	}
	if _, _, err := sc.QueryPlanned("a//b", PlanOpt{}); err != nil {
		t.Fatal(err)
	}
	st := qp.Stats()
	if st.Cache.Puts != shards {
		t.Fatalf("puts = %d, want %d (one partial per shard)", st.Cache.Puts, shards)
	}
	ms, pls, err := sc.QueryPlanned("a//b", PlanOpt{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pls) != shards {
		t.Fatalf("plans = %d, want %d", len(pls), shards)
	}
	for i, pl := range pls {
		if pl.Shard != i {
			t.Fatalf("plan %d has shard %d", i, pl.Shard)
		}
		if !pl.Cached {
			t.Fatalf("plan %d not served from cache: %+v", i, pl)
		}
	}
	st = qp.Stats()
	if st.Cache.Hits != shards {
		t.Fatalf("hits = %d, want %d", st.Cache.Hits, shards)
	}
	// Write to exactly one shard: only its partial should miss.
	dirty := sc.ShardOf(perShard[0])
	if _, err := sc.Insert(perShard[0], len("<root>"), []byte("<a><b/></a>")); err != nil {
		t.Fatal(err)
	}
	ms2, pls2, err := sc.QueryPlanned("a//b", PlanOpt{})
	if err != nil {
		t.Fatal(err)
	}
	st2 := qp.Stats()
	if got := st2.Cache.Hits - st.Cache.Hits; got != shards-1 {
		t.Fatalf("hits after one-shard write grew by %d, want %d", got, shards-1)
	}
	for _, pl := range pls2 {
		if pl.Shard == dirty && pl.Cached {
			t.Fatalf("dirty shard %d served from cache", dirty)
		}
		if pl.Shard != dirty && !pl.Cached {
			t.Fatalf("clean shard %d missed", pl.Shard)
		}
	}
	if len(ms2) != len(ms)+1 {
		t.Fatalf("matches after insert = %d, want %d", len(ms2), len(ms)+1)
	}
}

// TestCompactBumpsGeneration proves journal compaction participates in
// the generation protocol: the auto-compaction controller can never leave
// a cache entry alive across a maintenance event.
func TestCompactBumpsGeneration(t *testing.T) {
	dir := t.TempDir()
	jc, err := OpenJournaledCollection(dir, LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer jc.Close()
	if err := jc.Put("d", []byte("<root><a/></root>")); err != nil {
		t.Fatal(err)
	}
	before := jc.DB().PlanGeneration()
	if err := jc.Compact(); err != nil {
		t.Fatal(err)
	}
	after := jc.DB().PlanGeneration()
	if before.Store != after.Store || after.Gen <= before.Gen {
		t.Fatalf("generation %+v -> %+v, want a bump on the same store", before, after)
	}
}

// TestRestoreGetsFreshStoreIdentity: a restored snapshot is a different
// store object, so its generation pairs can never collide with the
// original's cache entries.
func TestRestoreGetsFreshStoreIdentity(t *testing.T) {
	db := Open(LD)
	mustAppend(t, db, "<a><b/></a>")
	dir := t.TempDir() + "/snap"
	if err := db.SnapshotFile(dir); err != nil {
		t.Fatal(err)
	}
	db2, err := RestoreFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if db.PlanGeneration().Store == db2.PlanGeneration().Store {
		t.Fatal("restored store reuses the original's identity")
	}
}
