package lazyxml

import (
	"testing"

	"repro/internal/xmltree"
)

func parseProbe(s string) (*xmltree.Document, error) { return xmltree.Parse([]byte(s)) }

// FuzzParsePath: arbitrary path expressions must parse or error, never
// panic, and accepted ones must round-trip through String.
func FuzzParsePath(f *testing.F) {
	for _, s := range []string{"a//b", "a/b/c", "//a", "/", "", "a[b]", "a//", "x y"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		p, err := ParsePath(expr)
		if err != nil {
			return
		}
		again, err := ParsePath(p.String())
		if err != nil {
			t.Fatalf("round-trip of %q -> %q failed: %v", expr, p.String(), err)
		}
		if again.String() != p.String() {
			t.Fatalf("round-trip changed %q -> %q", p.String(), again.String())
		}
	})
}

// FuzzParsePattern: same contract for twig patterns.
func FuzzParsePattern(f *testing.F) {
	for _, s := range []string{"a[b]//c", "a[//b/c][d]", "a[b[c]]", "a]", "[", "a[b]c"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		p, err := ParsePattern(expr)
		if err != nil {
			return
		}
		again, err := ParsePattern(p.String())
		if err != nil {
			t.Fatalf("round-trip of %q -> %q failed: %v", expr, p.String(), err)
		}
		if again.String() != p.String() {
			t.Fatalf("round-trip changed %q -> %q", p.String(), again.String())
		}
	})
}

// FuzzInsertSegment: arbitrary fragments either fail cleanly or leave a
// consistent store.
func FuzzInsertSegment(f *testing.F) {
	for _, s := range []string{"<a/>", "<a><b>t</b></a>", "<a>", "x", "", "<a b='c'/>"} {
		f.Add([]byte(s), uint16(0))
	}
	f.Fuzz(func(t *testing.T, frag []byte, posRaw uint16) {
		db := Open(LD)
		mustFrag := []byte("<root><x></x></root>")
		if _, err := db.Insert(0, mustFrag); err != nil {
			t.Fatal(err)
		}
		gp := int(posRaw) % (db.Len() + 1)
		if _, err := db.Insert(gp, frag); err != nil {
			// Rejected: the store must be untouched and consistent.
			if cerr := db.CheckConsistency(); cerr != nil {
				t.Fatalf("store inconsistent after rejected insert: %v", cerr)
			}
			return
		}
		// Accepted: the fragment was well-formed; the insertion point may
		// still have produced a super document that is not well-formed
		// (that responsibility is the caller's), so only check when the
		// text still parses.
		if err := db.CheckConsistency(); err != nil {
			text, _ := db.Text()
			wrapped := "<__dummy__>" + string(text) + "</__dummy__>"
			if _, perr := parseProbe(wrapped); perr == nil {
				t.Fatalf("well-formed super document but inconsistent store: %v", err)
			}
		}
	})
}
