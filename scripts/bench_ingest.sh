#!/bin/sh
# Measure the group-commit ingest ceiling at equal durability: the same
# concurrent insert workload against one durable sharded collection,
# once with every op paying its own fsync (the pre-group-commit
# baseline) and once through the commit lane, where a leader retires
# the whole queue with a single WAL write and a single fsync — plus a
# windowed lane that trades a bounded wait for fuller batches. Records
# all three throughput profiles in BENCH_ingest.json (make
# bench-ingest). Tunables via env:
#   SHARDS (default 1)  C writers (default 32)  PAD bytes (default 64)
#   D duration per lane (default 3s)  WINDOW (default 1ms)
#   OUT json path (default BENCH_ingest.json)
set -eu
cd "$(dirname "$0")/.."

SHARDS=${SHARDS:-1}
C=${C:-32}
PAD=${PAD:-64}
D=${D:-3s}
WINDOW=${WINDOW:-1ms}
OUT=${OUT:-BENCH_ingest.json}
BIN=$(mktemp -d)
trap 'rm -rf "$BIN"' EXIT

go build -o "$BIN/benchingest" ./cmd/benchingest

# pick <out-file> <field>: pull one field out of the summary line
# "  writes  n=... wps=... p50=... p95=... p99=... max=... batches=...
# laneops=... maxbatch=...".
pick() {
    sed -n "s/.*$2=\([^ ]*\).*/\1/p" "$1" | tail -1
}

run_lane() {
    label=$1
    shift
    echo "== ingest $label  (shards=$SHARDS c=$C pad=$PAD d=$D) =="
    # A failed lane fails the bench: CI treats this script as a gate.
    if ! "$BIN/benchingest" -shards "$SHARDS" -c "$C" -pad "$PAD" -d "$D" "$@" \
        | tee "$BIN/out-$label"; then
        echo "bench_ingest: $label lane FAILED" >&2
        exit 1
    fi
    echo
}

run_lane peropfsync -mode peropfsync
run_lane natural -mode group
run_lane group -mode group -window "$WINDOW"

# The headline groupCommit lane runs the recommended deployment shape —
# a small commit window — against the per-op-fsync baseline; the
# natural lane (window=0, batches form only from queue pressure) is
# kept as the zero-added-latency datapoint.
cat >"$OUT" <<EOF
{
  "bench": "group-commit ingest at equal durability (sync on ack)",
  "workload": {"shards": $SHARDS, "writers": $C, "padBytes": $PAD, "durationPerLane": "$D", "window": "$WINDOW"},
  "perOpFsync": {"writesPerSec": $(pick "$BIN/out-peropfsync" wps), "writes": $(pick "$BIN/out-peropfsync" n),
                 "p50": "$(pick "$BIN/out-peropfsync" p50)", "p99": "$(pick "$BIN/out-peropfsync" p99)"},
  "groupCommit": {"writesPerSec": $(pick "$BIN/out-group" wps), "writes": $(pick "$BIN/out-group" n),
                  "p50": "$(pick "$BIN/out-group" p50)", "p99": "$(pick "$BIN/out-group" p99)",
                  "batches": $(pick "$BIN/out-group" batches), "maxBatch": $(pick "$BIN/out-group" maxbatch)},
  "groupCommitNoWindow": {"writesPerSec": $(pick "$BIN/out-natural" wps), "writes": $(pick "$BIN/out-natural" n),
                          "p50": "$(pick "$BIN/out-natural" p50)", "p99": "$(pick "$BIN/out-natural" p99)",
                          "batches": $(pick "$BIN/out-natural" batches), "maxBatch": $(pick "$BIN/out-natural" maxbatch)}
}
EOF
echo "recorded $OUT:"
cat "$OUT"
