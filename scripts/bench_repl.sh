#!/bin/sh
# Compare bulk document ingest over HTTP PUTs vs the binary replication
# protocol, then demonstrate a live follower and its lag readout
# (make bench-repl). Tunables via env:
#   PORT (default 18080)  RPORT repl listener (default 18090)
#   FPORT follower http (default 18081)
#   N docs (default 2000)  DOC_BYTES (default 4096)  SHARDS (default 2)
set -eu
cd "$(dirname "$0")/.."

PORT=${PORT:-18080}
RPORT=${RPORT:-18090}
FPORT=${FPORT:-18081}
N=${N:-2000}
DOC_BYTES=${DOC_BYTES:-4096}
SHARDS=${SHARDS:-2}
BIN=$(mktemp -d)
PIDS=""
trap 'kill $PIDS 2>/dev/null || true; rm -rf "$BIN"' EXIT

go build -o "$BIN/lazyxmld" ./cmd/lazyxmld
go build -o "$BIN/lazyload" ./cmd/lazyload

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -s "$1"
    else
        wget -qO- "$1"
    fi
}

# A pure read probe: lazyload seeds documents even at -n 0, which a
# read-only follower refuses with 403.
wait_healthy() {
    port=$1
    i=0
    while [ $i -lt 100 ]; do
        if fetch "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then
            return 0
        fi
        i=$((i + 1))
        sleep 0.1
    done
    echo "bench_repl: daemon on :$port never became healthy" >&2
    return 1
}

# Each ingest lane gets a fresh journal so the two runs do identical work.
run_ingest() {
    label=$1
    shift
    dir="$BIN/journal-$label"
    "$BIN/lazyxmld" -addr "127.0.0.1:$PORT" -journal "$dir" -shards "$SHARDS" \
        -repl "127.0.0.1:$RPORT" >/dev/null 2>&1 &
    pid=$!
    PIDS="$PIDS $pid"
    wait_healthy "$PORT"
    echo "== bulk ingest [$label]  (n=$N doc-bytes=$DOC_BYTES shards=$SHARDS) =="
    # A lane that fails (daemon died, loader errored) fails the whole
    # bench: CI treats this script as a gate, not a demo.
    if ! "$BIN/lazyload" -url "http://127.0.0.1:$PORT" -bulk -keep \
        -n "$N" -doc-bytes "$DOC_BYTES" "$@"; then
        echo "bench_repl: $label ingest lane FAILED" >&2
        exit 1
    fi
    kill "$pid" 2>/dev/null
    wait "$pid" 2>/dev/null || true
    echo
}

run_ingest http
run_ingest binary -bin "127.0.0.1:$RPORT"

# Lag demo: a primary and a follower, bulk load through the primary,
# then the follower's replication block from /stats.
echo "== replication lag (primary :$PORT -> follower :$FPORT) =="
"$BIN/lazyxmld" -addr "127.0.0.1:$PORT" -journal "$BIN/journal-primary" \
    -shards "$SHARDS" -repl "127.0.0.1:$RPORT" >/dev/null 2>&1 &
ppid=$!
PIDS="$PIDS $ppid"
wait_healthy "$PORT"
"$BIN/lazyxmld" -addr "127.0.0.1:$FPORT" -journal "$BIN/journal-follower" \
    -shards "$SHARDS" -follow "127.0.0.1:$RPORT" >/dev/null 2>&1 &
fpid=$!
PIDS="$PIDS $fpid"
wait_healthy "$FPORT"

if ! "$BIN/lazyload" -url "http://127.0.0.1:$PORT" -bulk -keep \
    -n "$N" -doc-bytes "$DOC_BYTES" -bin "127.0.0.1:$RPORT"; then
    echo "bench_repl: lag-demo ingest FAILED" >&2
    exit 1
fi
sleep 1

echo "follower /stats replication block:"
fetch "http://127.0.0.1:$FPORT/stats" | tr ',' '\n' | grep -E 'replication|appliedSeq|primarySeq|"lag"|connected' || true
echo "follower doc count: $(fetch "http://127.0.0.1:$FPORT/docs" | tr ',' '\n' | grep -c bulk || true)"

kill "$ppid" "$fpid" 2>/dev/null || true
wait "$ppid" "$fpid" 2>/dev/null || true
