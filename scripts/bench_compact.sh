#!/bin/sh
# Measure what auto-compaction buys the read path: the same sustained
# mixed read/write load against a durable daemon, once with the
# maintenance controller off (segments accumulate for the whole run) and
# once with it on (collapse/compact keeps each document near one
# segment). Records both query latency profiles in BENCH_compact.json
# (make bench-compact). Tunables via env:
#   PORT (default 18080)  N ops (default 12000)  C workers (default 8)
#   READ fraction (default 0.5)  SHARDS (default 2)
#   OUT json path (default BENCH_compact.json)
set -eu
cd "$(dirname "$0")/.."

PORT=${PORT:-18080}
N=${N:-12000}
C=${C:-8}
READ=${READ:-0.5}
SHARDS=${SHARDS:-2}
OUT=${OUT:-BENCH_compact.json}
BIN=$(mktemp -d)
PIDS=""
trap 'kill $PIDS 2>/dev/null || true; rm -rf "$BIN"' EXIT

go build -o "$BIN/lazyxmld" ./cmd/lazyxmld
go build -o "$BIN/lazyload" ./cmd/lazyload

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -s "$1"
    else
        wget -qO- "$1"
    fi
}

wait_healthy() {
    i=0
    while [ $i -lt 100 ]; do
        if fetch "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; then
            return 0
        fi
        i=$((i + 1))
        sleep 0.1
    done
    echo "bench_compact: daemon on :$PORT never became healthy" >&2
    return 1
}

# p99_of <lazyload-output-file> <label>: pull one percentile out of the
# "  reads  p50=... p95=... p99=... max=..." summary line.
p99_of() {
    sed -n "s/^  $2.*p99=\([^ ]*\).*/\1/p" "$1" | head -1
}

# Each lane gets a fresh journal so both runs do identical work; the
# only variable is the maintenance controller.
run_lane() {
    label=$1
    shift
    dir="$BIN/journal-$label"
    "$BIN/lazyxmld" -addr "127.0.0.1:$PORT" -journal "$dir" -shards "$SHARDS" \
        "$@" >/dev/null 2>&1 &
    pid=$!
    PIDS="$PIDS $pid"
    wait_healthy
    echo "== auto-compact $label  (c=$C n=$N read=$READ shards=$SHARDS) =="
    # A lane that fails (daemon died, loader saw errors) fails the whole
    # bench: CI treats this script as a gate, not a demo.
    if ! "$BIN/lazyload" -url "http://127.0.0.1:$PORT" -c "$C" -n "$N" -read "$READ" \
        | tee "$BIN/out-$label"; then
        echo "bench_compact: $label lane FAILED" >&2
        exit 1
    fi
    fetch "http://127.0.0.1:$PORT/stats" | tr ',' '\n' \
        | grep -E 'maintenance|collapsedDocs|compacts|"segments"' || true
    kill "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    echo
}

run_lane off
run_lane on -auto-compact -compact-interval 250ms -compact-segments 16 -compact-log-bytes 262144

READS_OFF=$(p99_of "$BIN/out-off" "reads ")
READS_ON=$(p99_of "$BIN/out-on" "reads ")
WRITES_OFF=$(p99_of "$BIN/out-off" "writes")
WRITES_ON=$(p99_of "$BIN/out-on" "writes")
cat >"$OUT" <<EOF
{
  "bench": "auto-compaction query latency",
  "workload": {"ops": $N, "workers": $C, "readFraction": $READ, "shards": $SHARDS},
  "autoCompactOff": {"readsP99": "$READS_OFF", "writesP99": "$WRITES_OFF"},
  "autoCompactOn": {"readsP99": "$READS_ON", "writesP99": "$WRITES_ON",
                    "flags": "-auto-compact -compact-interval 250ms -compact-segments 16 -compact-log-bytes 262144"}
}
EOF
echo "recorded $OUT:"
cat "$OUT"
