#!/bin/sh
# Measure what streaming query execution buys on a large scan: the same
# ~100k-match structural query run materialized (the whole []Match built
# before the caller sees row one) and streamed (rows pulled through the
# bounded iterator pipeline), comparing peak live heap at the query's
# maximum-retention point, time to first row, and total drain time.
# Records both lanes plus the derived ratios in BENCH_stream.json
# (make bench-stream). Tunables via env:
#   ROWS (default 100000)  DOCS (default 100)  PASSES (default 5)
#   OUT json path (default BENCH_stream.json)
set -eu
cd "$(dirname "$0")/.."

ROWS=${ROWS:-100000}
DOCS=${DOCS:-100}
PASSES=${PASSES:-5}
OUT=${OUT:-BENCH_stream.json}
BIN=$(mktemp -d)
trap 'rm -rf "$BIN"' EXIT

go build -o "$BIN/benchstream" ./cmd/benchstream

# pick <out-file> <field>: pull one field out of the summary line
# "  ttfb_p50_us=... drain_p50_us=... drain_max_us=... peak_live_bytes=...".
pick() {
    sed -n "s/.*$2=\([^ ]*\).*/\1/p" "$1" | tail -1
}

run_lane() {
    label=$1
    shift
    echo "== stream $label  (rows=$ROWS docs=$DOCS passes=$PASSES) =="
    # A failed lane fails the bench: CI treats this script as a gate.
    if ! "$BIN/benchstream" -rows "$ROWS" -docs "$DOCS" -passes "$PASSES" "$@" \
        | tee "$BIN/out-$label"; then
        echo "bench_stream: $label lane FAILED" >&2
        exit 1
    fi
    echo
}

run_lane materialized -mode materialize
run_lane streamed -mode stream

MAT_PEAK=$(pick "$BIN/out-materialized" peak_live_bytes)
STR_PEAK=$(pick "$BIN/out-streamed" peak_live_bytes)
MAT_TTFB=$(pick "$BIN/out-materialized" ttfb_p50_us)
STR_TTFB=$(pick "$BIN/out-streamed" ttfb_p50_us)
# Guard the ratios against a degenerate zero denominator.
MEM_RATIO=$(awk "BEGIN { if ($STR_PEAK > 0) printf \"%.1f\", $MAT_PEAK / $STR_PEAK; else print 0 }")
TTFB_PCT=$(awk "BEGIN { if ($MAT_TTFB > 0) printf \"%.2f\", 100 * $STR_TTFB / $MAT_TTFB; else print 0 }")

cat >"$OUT" <<EOF
{
  "bench": "streamed vs materialized query execution",
  "workload": {"rows": $ROWS, "docs": $DOCS, "passes": $PASSES},
  "materialized": {"ttfbP50Us": $MAT_TTFB, "drainP50Us": $(pick "$BIN/out-materialized" drain_p50_us),
                   "drainMaxUs": $(pick "$BIN/out-materialized" drain_max_us), "peakLiveBytes": $MAT_PEAK},
  "streamed": {"ttfbP50Us": $STR_TTFB, "drainP50Us": $(pick "$BIN/out-streamed" drain_p50_us),
               "drainMaxUs": $(pick "$BIN/out-streamed" drain_max_us), "peakLiveBytes": $STR_PEAK},
  "memoryReductionX": $MEM_RATIO,
  "ttfbPctOfMaterialized": $TTFB_PCT
}
EOF
echo "recorded $OUT:"
cat "$OUT"
