#!/bin/sh
# Measure what the cost-based planner and its generation-keyed result
# cache buy the read path: the same zipf-skewed query mix against a
# daemon running with -plan (planner picks the algorithm, hot paths are
# served from the cache) and against fixed-algorithm lanes where every
# query forces one join via ?algo= with no caching. Records planned vs
# fixed p50/p99 and the cache hit ratio in BENCH_plan.json
# (make bench-plan). Tunables via env:
#   PORT (default 18080)  N ops (default 12000)  C workers (default 8)
#   READ fraction (default 0.97)  SHARDS (default 2)
#   PATHS query paths (default 64)  ZIPF skew (default 2.0)
#   OUT json path (default BENCH_plan.json)
# The default mix is a hot-query regime: 97% reads with a steep zipf
# head, the shape result caching is for. Every write still invalidates
# its whole shard by generation bump, so the hit ratio is an honest
# measure of generation churn, not of a cache that never invalidates.
set -eu
cd "$(dirname "$0")/.."

PORT=${PORT:-18080}
N=${N:-12000}
C=${C:-8}
READ=${READ:-0.97}
SHARDS=${SHARDS:-2}
PATHS=${PATHS:-64}
ZIPF=${ZIPF:-2.0}
OUT=${OUT:-BENCH_plan.json}
BIN=$(mktemp -d)
PIDS=""
trap 'kill $PIDS 2>/dev/null || true; rm -rf "$BIN"' EXIT

go build -o "$BIN/lazyxmld" ./cmd/lazyxmld
go build -o "$BIN/lazyload" ./cmd/lazyload

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -s "$1"
    else
        wget -qO- "$1"
    fi
}

wait_healthy() {
    i=0
    while [ $i -lt 100 ]; do
        if fetch "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; then
            return 0
        fi
        i=$((i + 1))
        sleep 0.1
    done
    echo "bench_plan: daemon on :$PORT never became healthy" >&2
    return 1
}

# pctl_of <lazyload-output-file> <label> <pN>: pull one percentile out
# of the "  reads  p50=... p95=... p99=... max=..." summary line.
pctl_of() {
    sed -n "s/^  $2.*$3=\([^ ]*\).*/\1/p" "$1" | head -1
}

# run_lane <label> <lazyload -algo value or "">: in-memory daemon, the
# planned lane gets -plan, fixed lanes force one algorithm per query.
run_lane() {
    label=$1
    algo=$2
    shift 2
    "$BIN/lazyxmld" -addr "127.0.0.1:$PORT" -shards "$SHARDS" "$@" >/dev/null 2>&1 &
    pid=$!
    PIDS="$PIDS $pid"
    wait_healthy
    echo "== plan lane $label  (c=$C n=$N read=$READ shards=$SHARDS paths=$PATHS zipf=$ZIPF) =="
    # A lane that fails (daemon died, loader saw errors) fails the whole
    # bench: CI treats this script as a gate, not a demo.
    set -- -url "http://127.0.0.1:$PORT" -c "$C" -n "$N" -read "$READ" \
        -query-mix -query-paths "$PATHS" -zipf-s "$ZIPF"
    if [ -n "$algo" ]; then
        set -- "$@" -algo "$algo"
    fi
    if ! "$BIN/lazyload" "$@" | tee "$BIN/out-$label"; then
        echo "bench_plan: $label lane FAILED" >&2
        exit 1
    fi
    kill "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    echo
}

run_lane planned "" -plan
run_lane lazy lazy
run_lane std std

P50_PLAN=$(pctl_of "$BIN/out-planned" "reads " p50)
P99_PLAN=$(pctl_of "$BIN/out-planned" "reads " p99)
P50_LAZY=$(pctl_of "$BIN/out-lazy" "reads " p50)
P99_LAZY=$(pctl_of "$BIN/out-lazy" "reads " p99)
P50_STD=$(pctl_of "$BIN/out-std" "reads " p50)
P99_STD=$(pctl_of "$BIN/out-std" "reads " p99)
HIT_RATIO=$(sed -n 's/.*hit_ratio=\([0-9.]*\).*/\1/p' "$BIN/out-planned" | head -1)
PICKS=$(sed -n 's/^planner picks: *//p' "$BIN/out-planned" | head -1)
cat >"$OUT" <<EOF
{
  "bench": "cost-based planner + generation-keyed result cache",
  "workload": {"ops": $N, "workers": $C, "readFraction": $READ,
               "shards": $SHARDS, "queryPaths": $PATHS, "zipfS": $ZIPF},
  "planned": {"readsP50": "$P50_PLAN", "readsP99": "$P99_PLAN",
              "cacheHitRatio": $HIT_RATIO, "picks": "$PICKS"},
  "fixedLazy": {"readsP50": "$P50_LAZY", "readsP99": "$P99_LAZY"},
  "fixedStd": {"readsP50": "$P50_STD", "readsP99": "$P99_STD"}
}
EOF
echo "recorded $OUT:"
cat "$OUT"
