#!/bin/sh
# Compare 1-shard vs N-shard mixed read/write throughput through the
# real daemon + load driver (make bench-shards). Tunables via env:
#   PORT (default 18080)  N ops (default 8000)  C workers (default 8)
#   READ fraction (default 0.7)  SHARDS (default 4)
set -eu
cd "$(dirname "$0")/.."

PORT=${PORT:-18080}
N=${N:-8000}
C=${C:-8}
READ=${READ:-0.7}
SHARDS=${SHARDS:-4}
BIN=$(mktemp -d)
PIDS=""
trap 'kill $PIDS 2>/dev/null || true; rm -rf "$BIN"' EXIT

go build -o "$BIN/lazyxmld" ./cmd/lazyxmld
go build -o "$BIN/lazyload" ./cmd/lazyload

wait_healthy() {
    i=0
    while [ $i -lt 100 ]; do
        if "$BIN/lazyload" -url "http://127.0.0.1:$PORT" -c 1 -n 0 >/dev/null 2>&1; then
            return 0
        fi
        i=$((i + 1))
        sleep 0.1
    done
    echo "bench_shards: daemon on :$PORT never became healthy" >&2
    return 1
}

run_one() {
    shards=$1
    "$BIN/lazyxmld" -addr "127.0.0.1:$PORT" -shards "$shards" &
    pid=$!
    PIDS="$PIDS $pid"
    wait_healthy
    echo "== shards=$shards  (c=$C n=$N read=$READ) =="
    # A lane that fails (daemon died, loader saw errors) fails the whole
    # bench: CI treats this script as a gate, not a demo.
    if ! "$BIN/lazyload" -url "http://127.0.0.1:$PORT" -c "$C" -n "$N" -read "$READ"; then
        echo "bench_shards: shards=$shards lane FAILED" >&2
        exit 1
    fi
    kill "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    echo
}

run_one 1
run_one "$SHARDS"
