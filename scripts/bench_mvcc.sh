#!/bin/sh
# Measure what MVCC snapshot views buy the read path under a compact
# storm: the same concurrent read workload against one durable
# collection, once with reads sharing a lock with compaction (the
# pre-MVCC "gated" discipline, reproduced as the baseline) and once on
# the engine's lock-free view path — plus a storm-free view lane for the
# undisturbed floor. Records all three latency profiles in
# BENCH_mvcc.json (make bench-mvcc). Tunables via env:
#   DOCS (default 16)  FRAGS per doc (default 8)  PAD bytes (default 32768)
#   C workers (default 1)  D duration per lane (default 3s)
#   OUT json path (default BENCH_mvcc.json)
set -eu
cd "$(dirname "$0")/.."

DOCS=${DOCS:-16}
FRAGS=${FRAGS:-8}
PAD=${PAD:-32768}
C=${C:-1}
D=${D:-3s}
OUT=${OUT:-BENCH_mvcc.json}
BIN=$(mktemp -d)
trap 'rm -rf "$BIN"' EXIT

go build -o "$BIN/benchmvcc" ./cmd/benchmvcc

# pick <out-file> <field>: pull one field out of the summary line
# "  reads  n=... p50=... p95=... p99=... max=... compacts=...".
pick() {
    sed -n "s/.*$2=\([^ ]*\).*/\1/p" "$1" | tail -1
}

run_lane() {
    label=$1
    shift
    echo "== mvcc $label  (docs=$DOCS frags=$FRAGS pad=$PAD c=$C d=$D) =="
    # A failed lane fails the bench: CI treats this script as a gate.
    if ! "$BIN/benchmvcc" -docs "$DOCS" -frags "$FRAGS" -pad "$PAD" -c "$C" -d "$D" "$@" \
        | tee "$BIN/out-$label"; then
        echo "bench_mvcc: $label lane FAILED" >&2
        exit 1
    fi
    echo
}

run_lane quiet -mode view -storm=false
run_lane gated -mode gated
run_lane view -mode view

cat >"$OUT" <<EOF
{
  "bench": "MVCC snapshot reads under compact storm",
  "workload": {"docs": $DOCS, "fragsPerDoc": $FRAGS, "padBytes": $PAD, "workers": $C, "durationPerLane": "$D"},
  "viewNoStorm": {"readsP50": "$(pick "$BIN/out-quiet" p50)", "readsP95": "$(pick "$BIN/out-quiet" p95)",
                  "readsP99": "$(pick "$BIN/out-quiet" p99)", "reads": $(pick "$BIN/out-quiet" n)},
  "gatedStorm": {"readsP50": "$(pick "$BIN/out-gated" p50)", "readsP95": "$(pick "$BIN/out-gated" p95)",
                 "readsP99": "$(pick "$BIN/out-gated" p99)",
                 "reads": $(pick "$BIN/out-gated" n), "compacts": $(pick "$BIN/out-gated" compacts)},
  "viewStorm": {"readsP50": "$(pick "$BIN/out-view" p50)", "readsP95": "$(pick "$BIN/out-view" p95)",
                "readsP99": "$(pick "$BIN/out-view" p99)",
                "reads": $(pick "$BIN/out-view" n), "compacts": $(pick "$BIN/out-view" compacts)}
}
EOF
echo "recorded $OUT:"
cat "$OUT"
