package lazyxml

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xmltree"
)

const peopleDoc = `<people>` +
	`<person id="p1"><name>Ann</name><city>Oslo</city></person>` +
	`<person id="p2"><name>Bob</name><city>Oslo</city></person>` +
	`<person id="p3"><name>Ann</name><city>Bergen</city></person>` +
	`</people>`

func valueDB(t *testing.T) *DB {
	t.Helper()
	db := Open(LD, WithValues(), WithAttributes())
	mustAppend(t, db, peopleDoc)
	return db
}

func TestValuePredicateOnElement(t *testing.T) {
	db := valueDB(t)
	n, err := db.CountPattern("person[name='Ann']//city")
	if err != nil || n != 2 {
		t.Fatalf("got %d, %v; want 2", n, err)
	}
	n, err = db.CountPattern("person[name='Bob']//city")
	if err != nil || n != 1 {
		t.Fatalf("got %d, %v; want 1", n, err)
	}
	n, err = db.CountPattern("person[name='Zoe']//city")
	if err != nil || n != 0 {
		t.Fatalf("got %d, %v; want 0", n, err)
	}
	// Combined value predicates intersect.
	n, err = db.CountPattern("person[name='Ann'][city='Oslo']/name")
	if err != nil || n != 1 {
		t.Fatalf("got %d, %v; want 1", n, err)
	}
}

func TestValuePredicateOnAttribute(t *testing.T) {
	db := valueDB(t)
	n, err := db.CountPattern("person[@id='p2']/name")
	if err != nil || n != 1 {
		t.Fatalf("got %d, %v; want 1", n, err)
	}
	ms, err := db.QueryPattern("people//person[@id='p3']//name")
	if err != nil || len(ms) != 1 {
		t.Fatalf("got %v, %v", ms, err)
	}
	// QueryTwig takes plain paths; bracket syntax must be rejected, not
	// silently treated as a tag.
	if _, err := db.QueryTwig("people//person[@id='p3']//name"); err == nil {
		t.Fatal("QueryTwig accepted predicate syntax")
	}
}

func TestValuePredicateMultiStep(t *testing.T) {
	db := Open(LD, WithValues())
	mustAppend(t, db, `<a><b><c>x</c></b><b><c>y</c></b></a>`)
	n, err := db.CountPattern("a//b[c='x']")
	if err != nil || n != 1 {
		t.Fatalf("got %d, %v; want 1", n, err)
	}
	// Descendant-axis value predicate.
	n, err = db.CountPattern("a[//c='y']/b")
	if err != nil || n != 2 {
		t.Fatalf("got %d, %v; want 2 (both b's under the qualifying a)", n, err)
	}
}

func TestValuePredicateWithoutIndexErrors(t *testing.T) {
	db := Open(LD)
	mustAppend(t, db, "<a><b>x</b></a>")
	if _, err := db.CountPattern("a[b='x']"); err == nil {
		t.Fatal("value predicate without WithValues succeeded")
	}
}

func TestValueParsePatterns(t *testing.T) {
	cases := []struct {
		in   string
		want string
		err  bool
	}{
		{"a[b='x']", "a[b='x']", false},
		{`a[b="x"]`, "a[b='x']", false},
		{"a[@id='1']//b", "a[@id='1']//b", false},
		{"a[b/c='v']", "a[b/c='v']", false},
		{"a[b='unterminated]", "", true},
		{"a[b=x]", "", true},
		{"a[b='x'c]", "", true},
		{"a[='x']", "", true},
	}
	for _, c := range cases {
		p, err := ParsePattern(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParsePattern(%q) succeeded: %v", c.in, p)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePattern(%q): %v", c.in, err)
			continue
		}
		if p.String() != c.want {
			t.Errorf("ParsePattern(%q) = %q, want %q", c.in, p.String(), c.want)
		}
	}
}

func TestValuesSurviveUpdatesAndSnapshot(t *testing.T) {
	db := valueDB(t)
	// Insert another person with an indexed value.
	if _, err := db.Insert(len("<people>"), []byte(`<person id="p4"><name>Ann</name></person>`)); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	n, _ := db.CountPattern("person[name='Ann']")
	if n != 3 {
		t.Fatalf("Ann count = %d, want 3", n)
	}
	// Remove one Ann (p1's whole person element).
	ms, err := db.QueryPattern("people/person[@id='p1']")
	if err != nil || len(ms) != 1 {
		t.Fatal(err)
	}
	p1 := ms[0][len(ms[0])-1]
	if err := db.Remove(p1.Start, p1.End-p1.Start); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.CountPattern("person[name='Ann']"); n != 2 {
		t.Fatalf("Ann count after removal = %d, want 2", n)
	}
	// Snapshot round trip keeps the value index.
	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if n, _ := got.CountPattern("person[name='Ann']"); n != 2 {
		t.Fatal("value index lost in snapshot")
	}
	// Rebuild keeps it too.
	if err := got.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if n, _ := got.CountPattern("person[name='Ann']"); n != 2 {
		t.Fatal("value index lost in rebuild")
	}
}

func TestValueLongAndEmptyNotIndexed(t *testing.T) {
	db := Open(LD, WithValues())
	long := strings.Repeat("x", 100)
	mustAppend(t, db, "<a><b>"+long+"</b><c>  </c><d>ok</d></a>")
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.CountPattern("a[b='" + long + "']"); n != 0 {
		t.Fatal("over-long value matched")
	}
	if n, _ := db.CountPattern("a[d='ok']"); n != 1 {
		t.Fatal("short value not matched")
	}
	// Whitespace-trimmed equality.
	if n, _ := db.CountPattern("a[d=' ok ']"); n != 1 {
		t.Fatal("trimmed value not matched")
	}
}

// TestQuickValuePredicateAgainstBruteForce: random documents with small
// value alphabets — value predicates agree with direct tree evaluation.
func TestQuickValuePredicateAgainstBruteForce(t *testing.T) {
	tags := []string{"a", "b"}
	vals := []string{"u", "v", "w"}
	genDoc := func(r *rand.Rand) string {
		var sb strings.Builder
		var emit func(depth int)
		emit = func(depth int) {
			tag := tags[r.Intn(len(tags))]
			if depth > 3 || r.Intn(3) == 0 {
				sb.WriteString("<" + tag + ">" + vals[r.Intn(len(vals))] + "</" + tag + ">")
				return
			}
			sb.WriteString("<" + tag + ">")
			for i, n := 0, r.Intn(3); i < n; i++ {
				emit(depth + 1)
			}
			sb.WriteString("</" + tag + ">")
		}
		sb.WriteString("<r>")
		for i := 0; i < 3; i++ {
			emit(1)
		}
		sb.WriteString("</r>")
		return sb.String()
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		text := genDoc(r)
		db := Open(LD, WithValues())
		if _, err := db.Append([]byte(text)); err != nil {
			return false
		}
		if err := db.CheckConsistency(); err != nil {
			t.Log(err)
			return false
		}
		doc, err := xmltree.Parse([]byte(text))
		if err != nil {
			return false
		}
		for _, anchorTag := range tags {
			for _, childTag := range tags {
				for _, v := range vals {
					want := 0
					doc.Walk(func(e *xmltree.Element) bool {
						if e.Tag != anchorTag || e == doc.Root {
							return true
						}
						for _, c := range e.Children {
							if c.Tag == childTag && strings.TrimSpace(c.DirectText(doc.Text)) == v {
								want++
								break
							}
						}
						return true
					})
					expr := anchorTag + "[" + childTag + "='" + v + "']"
					got, err := db.CountPattern(expr)
					if err != nil {
						return false
					}
					if got != want {
						t.Logf("seed %d %s: got %d want %d (doc %s)", seed, expr, got, want, text)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
