package lazyxml_test

// MVCC snapshot-read tests: the oracle-equivalence property harness
// (every view observes exactly the state it was acquired at, verified
// against a pure-Go model while writers and the maintenance controller
// churn underneath), the view-retention soak (a slow reader pinned
// across compact cycles costs memory, never correctness, and the memory
// is reclaimed on release), the re-seed invalidation check, and the
// flat-latency regression test for queries under a compact storm. All
// of them are meant to run under -race: the CI mvcc step does.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	lazyxml "repro"
	"repro/internal/maintain"
)

const mvccOpen = len("<people>")

func mvccFrag(n int) []byte {
	return []byte(fmt.Sprintf("<person><phone>%04d</phone></person>", n%10000))
}

func mvccRender(frags [][]byte) []byte {
	var b bytes.Buffer
	b.WriteString("<people>")
	for _, f := range frags {
		b.Write(f)
	}
	b.WriteString("</people>")
	return b.Bytes()
}

// mvccCapture is one generation's expected state: the view pinned at
// capture time plus the model's rendering of every document at that
// instant. Readers re-verify it long after the live store has moved on.
type mvccCapture struct {
	cv     *lazyxml.CollectionView
	texts  map[string][]byte
	phones map[string]int
	total  int
}

// TestMVCCOracleEquivalence is the property harness: one writer applies
// a random op stream to the collection and to a pure-Go model in
// lockstep, periodically pinning a whole-collection view together with
// the model's state; concurrent readers then verify — repeatedly, while
// later writes and maintenance-controller ticks keep mutating the live
// store — that the view still serves exactly its generation's texts and
// query results.
func TestMVCCOracleEquivalence(t *testing.T) {
	const (
		ops          = 600
		captureEvery = 8
		readers      = 3
	)
	r := rand.New(rand.NewSource(20050614))
	c := lazyxml.NewCollection(lazyxml.LD)
	ctl := maintain.New(c, maintain.Config{
		Policy: maintain.Policy{
			SegmentsHigh: 6, SegmentsLow: 3,
			MinActionGap:       time.Nanosecond,
			MaxRetainedViewAge: -1, // pinned views must not stall collapses here
		},
	})

	names := []string{"d0", "d1", "d2", "d3", "d4"}
	model := map[string][][]byte{}

	captures := make(chan mvccCapture, readers*2)
	errs := make(chan error, readers+2)
	var wg sync.WaitGroup

	// Readers: each pinned view must keep answering with its own
	// generation's state, byte for byte, however the live store moves.
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for cap := range captures {
				for round := 0; round < 4; round++ {
					for name, want := range cap.texts {
						got, err := cap.cv.Text(name)
						if err != nil {
							errs <- fmt.Errorf("view text %q: %w", name, err)
							return
						}
						if !bytes.Equal(got, want) {
							errs <- fmt.Errorf("view text %q drifted:\n got %s\nwant %s", name, got, want)
							return
						}
						n, err := cap.cv.CountDoc(name, "person/phone")
						if err != nil {
							errs <- fmt.Errorf("view count %q: %w", name, err)
							return
						}
						if n != cap.phones[name] {
							errs <- fmt.Errorf("view count %q = %d, want %d", name, n, cap.phones[name])
							return
						}
					}
					total, err := cap.cv.Count("person/phone")
					if err != nil {
						errs <- fmt.Errorf("view total: %w", err)
						return
					}
					if total != cap.total {
						errs <- fmt.Errorf("view total = %d, want %d", total, cap.total)
						return
					}
					names := cap.cv.Names()
					if len(names) != len(cap.texts) {
						errs <- fmt.Errorf("view names = %v, want %d docs", names, len(cap.texts))
						return
					}
					time.Sleep(time.Millisecond)
				}
				cap.cv.Release()
			}
		}()
	}

	// Maintenance: controller ticks concurrently with everything. A
	// collapse rewrites segments and bumps the generation but never the
	// logical content, so the oracle is unaffected by when it fires.
	stopMaint := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopMaint:
				return
			default:
			}
			if err := ctl.RunOnce(context.Background()); err != nil {
				errs <- fmt.Errorf("maintain tick: %w", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Writer: the single mutator, applying each op to the store and the
	// model back to back. Captures happen at the same sequential point,
	// so the pinned view and the model snapshot describe one state.
	seq := 0
	for i := 0; i < ops; i++ {
		name := names[r.Intn(len(names))]
		frags, exists := model[name]
		switch {
		case !exists:
			n := 1 + r.Intn(3)
			fs := make([][]byte, n)
			for j := range fs {
				seq++
				fs[j] = mvccFrag(seq)
			}
			if err := c.Put(name, mvccRender(fs)); err != nil {
				t.Fatal(err)
			}
			model[name] = fs
		case r.Intn(10) == 0:
			if err := c.Delete(name); err != nil {
				t.Fatal(err)
			}
			delete(model, name)
		case len(frags) > 0 && r.Intn(3) == 0:
			if err := c.Remove(name, mvccOpen, len(frags[0])); err != nil {
				t.Fatal(err)
			}
			model[name] = frags[1:]
		default:
			seq++
			f := mvccFrag(seq)
			if _, err := c.Insert(name, mvccOpen, f); err != nil {
				t.Fatal(err)
			}
			model[name] = append([][]byte{f}, frags...)
		}

		if i%captureEvery == 0 {
			cap := mvccCapture{texts: map[string][]byte{}, phones: map[string]int{}}
			for n, fs := range model {
				cap.texts[n] = mvccRender(fs)
				cap.phones[n] = len(fs)
				cap.total += len(fs)
			}
			cv, err := c.ViewAll()
			if err != nil {
				t.Fatal(err)
			}
			cap.cv = cv
			select {
			case captures <- cap:
			default:
				cv.Release() // readers saturated: drop this capture
			}
		}
		select {
		case err := <-errs:
			t.Fatal(err)
		default:
		}
	}
	close(captures)
	close(stopMaint)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestMVCCViewRetentionSoak pins one view across repeated write+compact
// cycles and checks the retention contract: the pinned view's answers
// never move, the stats report it as the oldest retained generation,
// per-cycle transient views are reclaimed rather than accumulated, and
// releasing the pin lets its generation go too.
func TestMVCCViewRetentionSoak(t *testing.T) {
	const cycles = 5
	dir := t.TempDir()
	jc, err := lazyxml.OpenJournaledCollection(dir, lazyxml.LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer jc.Close()
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("doc-%d", i)
		if err := jc.Put(name, mvccRender([][]byte{mvccFrag(i)})); err != nil {
			t.Fatal(err)
		}
	}

	pinned, err := jc.View("doc-0")
	if err != nil {
		t.Fatal(err)
	}
	wantText, err := pinned.Text()
	if err != nil {
		t.Fatal(err)
	}
	wantCount, err := pinned.Count("person/phone")
	if err != nil {
		t.Fatal(err)
	}
	pinnedGen := pinned.Generation().Gen

	for cyc := 0; cyc < cycles; cyc++ {
		for i := 0; i < 8; i++ {
			if _, err := jc.Insert("doc-1", mvccOpen, mvccFrag(100*cyc+i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := jc.Compact(); err != nil {
			t.Fatal(err)
		}
		// The pinned view is immune to the cycle's writes and compaction.
		got, err := pinned.Text()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, wantText) {
			t.Fatalf("cycle %d: pinned view text drifted", cyc)
		}
		if n, err := pinned.Count("person/phone"); err != nil || n != wantCount {
			t.Fatalf("cycle %d: pinned count = %d, %v, want %d", cyc, n, err, wantCount)
		}
		// Transient views acquired and released inside the cycle must not
		// accumulate behind the pin.
		dv, err := jc.View("doc-1")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dv.Text(); err != nil {
			t.Fatal(err)
		}
		dv.Release()

		vs := jc.ViewStats()[0].Views
		if vs.Live < 1 {
			t.Fatalf("cycle %d: pinned view not counted live: %+v", cyc, vs)
		}
		if vs.Live > 3 {
			t.Fatalf("cycle %d: views accumulate instead of being reclaimed: %+v", cyc, vs)
		}
		if vs.OldestGen != pinnedGen {
			t.Fatalf("cycle %d: oldest retained gen = %d, want pinned %d", cyc, vs.OldestGen, pinnedGen)
		}
		if vs.HeadGen <= pinnedGen {
			t.Fatalf("cycle %d: head generation %d never advanced past pin %d", cyc, vs.HeadGen, pinnedGen)
		}
	}

	before := jc.ViewStats()[0].Views
	pinned.Release()
	after := jc.ViewStats()[0].Views
	if after.Reclaimed <= before.Reclaimed {
		t.Fatalf("release did not reclaim: before %+v after %+v", before, after)
	}
	if after.Live > 0 && after.OldestGen == pinnedGen {
		t.Fatalf("released generation %d still reported retained: %+v", pinnedGen, after)
	}
}

// TestMVCCReseedInvalidatesViews checks the one place a store is
// replaced wholesale: installing a re-seed snapshot invalidates the old
// store's published view so new readers see only the installed state,
// while a handle pinned before the swap keeps serving the pre-swap
// bytes until released.
func TestMVCCReseedInvalidatesViews(t *testing.T) {
	srcDir, dstDir := t.TempDir(), t.TempDir()
	src, err := lazyxml.OpenShardedCollection(srcDir, 1, lazyxml.LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := lazyxml.OpenShardedCollection(dstDir, 1, lazyxml.LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	oldText := []byte(`<d><x n="old"/></d>`)
	newText := []byte(`<d><x n="new"/><x n="new2"/></d>`)
	if err := dst.Put("doc", oldText); err != nil {
		t.Fatal(err)
	}
	if err := src.Put("doc", newText); err != nil {
		t.Fatal(err)
	}

	pinned, err := dst.View("doc")
	if err != nil {
		t.Fatal(err)
	}

	snap, err := src.CaptureShardSnapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.InstallReseed(0, snap); err != nil {
		t.Fatal(err)
	}

	// The pre-swap handle still answers from the replaced store.
	got, err := pinned.Text()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, oldText) {
		t.Fatalf("pinned pre-reseed view = %s, want %s", got, oldText)
	}
	pinned.Release()

	// A fresh view resolves against the installed store only.
	fresh, err := dst.View("doc")
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Release()
	got, err = fresh.Text()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, newText) {
		t.Fatalf("post-reseed view = %s, want %s", got, newText)
	}
	if n, err := fresh.Count("d/x"); err != nil || n != 2 {
		t.Fatalf("post-reseed count = %d, %v, want 2", n, err)
	}
	if vs := dst.ViewStats(); len(vs) != 1 {
		t.Fatalf("ViewStats after reseed = %+v", vs)
	}
}

// TestMVCCQueryLatencyFlatDuringCompact is the latency regression test:
// read p99 while a compact storm runs must stay within a generous
// envelope of the undisturbed baseline. The bound is relative (compacts
// bump the generation, so reads pay view rebuilds — but never a
// store-wide stall) plus an absolute floor so scheduler noise on a busy
// host cannot flake it; a return to gated reads would blow through both,
// since every query would then queue behind a full snapshot rewrite.
func TestMVCCQueryLatencyFlatDuringCompact(t *testing.T) {
	const (
		docs    = 16
		samples = 300
	)
	dir := t.TempDir()
	jc, err := lazyxml.OpenJournaledCollection(dir, lazyxml.LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer jc.Close()
	for i := 0; i < docs; i++ {
		fs := make([][]byte, 8)
		for j := range fs {
			fs[j] = mvccFrag(8*i + j)
		}
		if err := jc.Put(fmt.Sprintf("doc-%d", i), mvccRender(fs)); err != nil {
			t.Fatal(err)
		}
	}

	measure := func() (p50, p99 time.Duration) {
		lat := make([]time.Duration, 0, samples)
		for i := 0; i < samples; i++ {
			start := time.Now()
			if _, err := jc.Query("person/phone"); err != nil {
				t.Fatal(err)
			}
			lat = append(lat, time.Since(start))
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[len(lat)/2], lat[len(lat)*99/100]
	}

	baseP50, baseP99 := measure()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	var compacts int
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := jc.Insert("doc-0", mvccOpen, mvccFrag(compacts)); err != nil {
				t.Error(err)
				return
			}
			if err := jc.Compact(); err != nil {
				t.Error(err)
				return
			}
			compacts++
		}
	}()
	stormP50, stormP99 := measure()
	close(stop)
	wg.Wait()

	if compacts == 0 {
		t.Fatal("compact storm never ran a compact")
	}
	t.Logf("baseline p50=%v p99=%v; storm p50=%v p99=%v over %d compacts",
		baseP50, baseP99, stormP50, stormP99, compacts)
	// Generous but meaningful: a gated read path parks queries behind
	// whole snapshot rewrites, which costs milliseconds-to-seconds, not
	// the microseconds a view rebuild costs on a store this size.
	limit := 40*baseP99 + 25*time.Millisecond
	if stormP99 > limit {
		t.Fatalf("storm p99 %v exceeds %v (baseline p99 %v): reads are stalling behind compaction",
			stormP99, limit, baseP99)
	}
}
