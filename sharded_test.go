package lazyxml

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// nameOnShard probes for a document name the collection would route to
// the wanted shard.
func nameOnShard(sc *ShardedCollection, base string, want int) string {
	for k := 0; ; k++ {
		name := fmt.Sprintf("%s-%d", base, k)
		if sc.hashShard(name) == want {
			return name
		}
	}
}

func TestShardedRoutingAndFanout(t *testing.T) {
	sc := NewShardedCollection(4, LD)
	if sc.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d", sc.ShardCount())
	}
	if sc.IsDurable() {
		t.Fatal("in-memory collection claims durability")
	}

	// One document per shard plus extras, so every shard serves.
	var names []string
	for s := 0; s < 4; s++ {
		for i := 0; i < 2; i++ {
			name := nameOnShard(sc, fmt.Sprintf("doc%d", i), s)
			names = append(names, name)
			doc := fmt.Sprintf("<d><a><b n=\"%d\"/></a></d>", s)
			if err := sc.Put(name, []byte(doc)); err != nil {
				t.Fatalf("Put %s: %v", name, err)
			}
		}
	}
	if sc.Len() != 8 {
		t.Fatalf("Len = %d", sc.Len())
	}
	if got := sc.Names(); len(got) != 8 {
		t.Fatalf("Names = %v", got)
	}

	// Routing is stable: the shard a document reports is the shard that
	// actually holds it.
	for _, name := range names {
		si := sc.ShardOf(name)
		found := false
		for _, held := range sc.shards[si].Names() {
			if held == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("document %s reported on shard %d but not held there", name, si)
		}
	}

	// Duplicate and unknown names fail with the canonical errors.
	if err := sc.Put(names[0], []byte("<d/>")); err == nil {
		t.Fatal("duplicate Put succeeded")
	}
	if _, err := sc.Text("nope"); err == nil {
		t.Fatal("Text of unknown document succeeded")
	}

	// Whole-collection fan-out equals the per-shard sum; doc scoping
	// stays exact.
	n, err := sc.Count("d//b")
	if err != nil || n != 8 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	ms, err := sc.Query("a//b")
	if err != nil || len(ms) != 8 {
		t.Fatalf("Query = %d, %v", len(ms), err)
	}
	if c, err := sc.CountDoc(names[0], "d//b"); err != nil || c != 1 {
		t.Fatalf("CountDoc = %d, %v", c, err)
	}

	// Doc-relative updates route through; stats aggregate across shards.
	if _, err := sc.Insert(names[0], 3, []byte("<b n=\"x\"/>")); err != nil {
		t.Fatal(err)
	}
	if n, _ := sc.Count("d//b"); n != 9 {
		t.Fatalf("Count after insert = %d", n)
	}
	st := sc.Stats()
	if st.Inserts != 9 { // 8 Puts appended + 1 Insert
		t.Fatalf("aggregate Inserts = %d", st.Inserts)
	}
	per := sc.ShardStats()
	if len(per) != 4 {
		t.Fatalf("ShardStats = %d entries", len(per))
	}
	var docs, inserts int
	for i, ss := range per {
		if ss.Shard != i {
			t.Fatalf("ShardStats[%d].Shard = %d", i, ss.Shard)
		}
		if ss.Docs != 2 {
			t.Fatalf("shard %d holds %d docs, want 2", i, ss.Docs)
		}
		docs += ss.Docs
		inserts += ss.Stats.Inserts
	}
	if docs != sc.Len() || inserts != st.Inserts {
		t.Fatalf("per-shard sums (%d docs, %d inserts) disagree with aggregate (%d, %d)",
			docs, inserts, sc.Len(), st.Inserts)
	}

	// Shard-parallel maintenance keeps everything consistent.
	if err := sc.CollapseAll(); err != nil {
		t.Fatal(err)
	}
	if err := sc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if n, _ := sc.Count("d//b"); n != 9 {
		t.Fatalf("Count after collapse = %d", n)
	}

	if err := sc.Delete(names[0]); err != nil {
		t.Fatal(err)
	}
	if sc.Len() != 7 {
		t.Fatalf("Len after delete = %d", sc.Len())
	}
}

func TestShardedDurableReopenPersistedCountWins(t *testing.T) {
	dir := t.TempDir()
	sc, err := OpenShardedCollection(dir, 3, LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for s := 0; s < 3; s++ {
		name := nameOnShard(sc, "doc", s)
		names = append(names, name)
		if err := sc.Put(name, []byte("<d></d>")); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := sc.Insert(name, 3, []byte(fmt.Sprintf("<x n=\"%d\"/>", i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := map[string][]byte{}
	for _, name := range names {
		text, err := sc.Text(name)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = text
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen asking for ONE shard: the persisted count must win, and
	// every document must come back on the shard that holds it.
	sc2, err := OpenShardedCollection(dir, 1, LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sc2.Close()
	if sc2.ShardCount() != 3 {
		t.Fatalf("ShardCount after reopen = %d, want persisted 3", sc2.ShardCount())
	}
	for name, text := range want {
		got, err := sc2.Text(name)
		if err != nil {
			t.Fatalf("Text(%s) after reopen: %v", name, err)
		}
		if !bytes.Equal(got, text) {
			t.Fatalf("document %s changed across reopen:\n%s\nvs\n%s", name, got, text)
		}
	}
	if err := sc2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedLegacyMigration covers the compatibility contract: a
// journal directory written by the pre-sharding JournaledCollection
// opens as a one-shard collection with identical recovered contents, and
// is refused (not silently emptied) when asked for more shards.
func TestShardedLegacyMigration(t *testing.T) {
	dir := t.TempDir()
	jc, err := OpenJournaledCollection(dir, LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := jc.Put("alpha", []byte("<a></a>")); err != nil {
		t.Fatal(err)
	}
	if err := jc.Put("beta", []byte("<b><c/></b>")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := jc.Insert("alpha", 3, []byte("<x/>")); err != nil {
			t.Fatal(err)
		}
	}
	alpha, _ := jc.Text("alpha")
	beta, _ := jc.Text("beta")
	if err := jc.Close(); err != nil {
		t.Fatal(err)
	}

	// Asking for 4 shards on a legacy layout must refuse.
	if _, err := OpenShardedCollection(dir, 4, LD, nil); err == nil {
		t.Fatal("opening a legacy single-store dir with 4 shards succeeded")
	}

	sc, err := OpenShardedCollection(dir, 1, LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if sc.ShardCount() != 1 || sc.Len() != 2 {
		t.Fatalf("legacy reopen: %d shards, %d docs", sc.ShardCount(), sc.Len())
	}
	if got, _ := sc.Text("alpha"); !bytes.Equal(got, alpha) {
		t.Fatalf("alpha after migration:\n%s\nwant\n%s", got, alpha)
	}
	if got, _ := sc.Text("beta"); !bytes.Equal(got, beta) {
		t.Fatalf("beta after migration:\n%s\nwant\n%s", got, beta)
	}
	if n, err := sc.CountDoc("alpha", "a//x"); err != nil || n != 4 {
		t.Fatalf("alpha count = %d, %v", n, err)
	}
	if err := sc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// One-shard mode must not have introduced shard subdirectories or a
	// meta file: the layout stays byte-compatible with the legacy dir.
	if _, err := os.Stat(filepath.Join(dir, shardsMetaName)); err == nil {
		t.Fatal("one-shard open wrote a shards.meta into a legacy dir")
	}
	if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf(shardDirFormat, 0))); err == nil {
		t.Fatal("one-shard open created a shard subdirectory")
	}
}

// TestShardedTornTailOneShard crashes one shard mid-append (a torn
// record at its WAL tail) and verifies recovery is per-shard: the torn
// shard drops only the unacknowledged tail while every other shard
// replays cleanly.
func TestShardedTornTailOneShard(t *testing.T) {
	dir := t.TempDir()
	sc, err := OpenShardedCollection(dir, 3, LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 3)
	for s := 0; s < 3; s++ {
		names[s] = nameOnShard(sc, "doc", s)
		if err := sc.Put(names[s], []byte("<d></d>")); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if _, err := sc.Insert(names[s], 3, []byte(fmt.Sprintf("<x n=\"%d\"/>", i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	victim := sc.ShardOf(names[1])
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash mid-write on the victim shard: a record with a valid prefix
	// but a missing checksum, exactly what a power cut during append
	// leaves behind.
	torn := encodeRecord(walRecord{op: opInsert, gp: 3, l: 4, frag: []byte("<z/>")})
	walPath := filepath.Join(dir, fmt.Sprintf(shardDirFormat, victim), journalName)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)-2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	sc2, err := OpenShardedCollection(dir, 3, LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sc2.Close()
	// Every acknowledged update survives on every shard; the torn insert
	// (never acknowledged) is gone.
	for s := 0; s < 3; s++ {
		n, err := sc2.CountDoc(names[s], "d//x")
		if err != nil || n != 5 {
			t.Fatalf("shard %d count after torn-tail recovery = %d, %v", s, n, err)
		}
	}
	if n, _ := sc2.Count("d//z"); n != 0 {
		t.Fatal("torn record was replayed")
	}
	if err := sc2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// The revived collection keeps serving durable updates on the torn
	// shard.
	if _, err := sc2.Insert(names[victim], 3, []byte("<post/>")); err != nil {
		t.Fatal(err)
	}
}
