package lazyxml

import (
	"bytes"
	"testing"
)

func TestAttributeQueries(t *testing.T) {
	db := Open(LD, WithAttributes())
	mustAppend(t, db, `<people><person id="p1" age="30"><name>x</name></person><person id="p2"/></people>`)

	n, err := db.Count("person/@id")
	if err != nil || n != 2 {
		t.Fatalf("person/@id = %d, %v", n, err)
	}
	n, err = db.Count("person/@age")
	if err != nil || n != 1 {
		t.Fatalf("person/@age = %d, %v", n, err)
	}
	// Descendant axis also works.
	n, err = db.Count("people//@id")
	if err != nil || n != 2 {
		t.Fatalf("people//@id = %d, %v", n, err)
	}
	// @id is not a child of people (it belongs to person, one level down).
	n, err = db.Count("people/@id")
	if err != nil || n != 0 {
		t.Fatalf("people/@id = %d, %v", n, err)
	}
	// Attributes carry exact global spans over their text.
	ms, err := db.Query("person/@age")
	if err != nil || len(ms) != 1 {
		t.Fatal(err)
	}
	text, _ := db.Text()
	if got := string(text[ms[0].DescStart:ms[0].DescEnd]); got != `age="30"` {
		t.Fatalf("attr span = %q", got)
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestAttributesOffByDefault(t *testing.T) {
	db := Open(LD)
	mustAppend(t, db, `<a id="1"/>`)
	if n, _ := db.Count("a/@id"); n != 0 {
		t.Fatal("attributes indexed without WithAttributes")
	}
	if db.Stats().Elements != 1 {
		t.Fatalf("elements = %d", db.Stats().Elements)
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestAttributesAcrossSegments(t *testing.T) {
	db := Open(LD, WithAttributes())
	mustAppend(t, db, "<people></people>")
	if _, err := db.Insert(8, []byte(`<person id="p1"/>`)); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.Count("people//person/@id"); n != 1 {
		t.Fatal("cross-segment attribute path failed")
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestAttributesSurviveRemovalAndRebuild(t *testing.T) {
	db := Open(LD, WithAttributes())
	mustAppend(t, db, `<a><b id="1"/><b id="2"/></a>`)
	// Remove the first <b id="1"/> (starts at 3, 10 bytes).
	if err := db.RemoveElementAt(3); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.Count("b/@id"); n != 1 {
		t.Fatal("attribute records not cleaned on removal")
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if err := db.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.Count("b/@id"); n != 1 {
		t.Fatal("attributes lost on rebuild")
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestAttributesSurviveSnapshot(t *testing.T) {
	db := Open(LS, WithAttributes())
	mustAppend(t, db, `<a id="1"><b k="v"/></a>`)
	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := got.Count("a/@id"); n != 1 {
		t.Fatal("attribute index lost in snapshot")
	}
	if err := got.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// The restored store keeps indexing attributes on new inserts.
	if _, err := got.Append([]byte(`<a id="9"/>`)); err != nil {
		t.Fatal(err)
	}
	if n, _ := got.Count("a/@id"); n != 2 {
		t.Fatal("restored store stopped indexing attributes")
	}
}

func TestAttributeTwig(t *testing.T) {
	db := Open(LD, WithAttributes())
	mustAppend(t, db, `<site><person id="p1"><watch ref="w1"/></person></site>`)
	tuples, err := db.QueryTwig("site//person//@ref")
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 {
		t.Fatalf("tuples = %d", len(tuples))
	}
}
