package lazyxml

import (
	"os"
	"path/filepath"
	"testing"
)

func TestJournaledCollectionReopen(t *testing.T) {
	dir := t.TempDir()
	jc, err := OpenJournaledCollection(dir, LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := jc.Put("catalog", []byte("<catalog><book/></catalog>")); err != nil {
		t.Fatal(err)
	}
	if err := jc.Put("orders", []byte("<orders></orders>")); err != nil {
		t.Fatal(err)
	}
	if _, err := jc.Insert("orders", 8, []byte("<order/>")); err != nil {
		t.Fatal(err)
	}
	if err := jc.Delete("catalog"); err != nil {
		t.Fatal(err)
	}
	if err := jc.Close(); err != nil {
		t.Fatal(err)
	}

	jc2, err := OpenJournaledCollection(dir, LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer jc2.Close()
	names := jc2.Names()
	if len(names) != 1 || names[0] != "orders" {
		t.Fatalf("Names = %v", names)
	}
	text, err := jc2.Text("orders")
	if err != nil || string(text) != "<orders><order/></orders>" {
		t.Fatalf("orders = %s, %v", text, err)
	}
	if n, _ := jc2.CountDoc("orders", "orders//order"); n != 1 {
		t.Fatal("scoped query lost the match after reopen")
	}
	if err := jc2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestJournaledCollectionCompact(t *testing.T) {
	dir := t.TempDir()
	jc, err := OpenJournaledCollection(dir, LS, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c"} {
		if err := jc.Put(name, []byte("<"+name+"><x/></"+name+">")); err != nil {
			t.Fatal(err)
		}
	}
	if err := jc.Delete("b"); err != nil {
		t.Fatal(err)
	}
	if err := jc.Compact(); err != nil {
		t.Fatal(err)
	}
	// Both logs are now empty; everything lives in the snapshots.
	for _, f := range []string{journalName, docsWALName} {
		fi, err := os.Stat(filepath.Join(dir, f))
		if err != nil || fi.Size() != 0 {
			t.Fatalf("%s not truncated: %v, %v", f, fi, err)
		}
	}
	// Post-compact updates land in the fresh logs and replay on reopen.
	if err := jc.Put("d", []byte("<d/>")); err != nil {
		t.Fatal(err)
	}
	jc.Close()

	jc2, err := OpenJournaledCollection(dir, LS, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer jc2.Close()
	names := jc2.Names()
	want := []string{"a", "c", "d"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
	if n, _ := jc2.CountDoc("a", "a//x"); n != 1 {
		t.Fatal("doc a lost its content")
	}
	if err := jc2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestJournaledCollectionCrashKeepsConsistency(t *testing.T) {
	dir := t.TempDir()
	jc, err := OpenJournaledCollection(dir, LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := jc.Put("log", []byte("<log></log>")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := jc.Insert("log", 5, []byte("<entry/>")); err != nil {
			t.Fatal(err)
		}
	}
	// Hard kill: no Close, no Compact. Then a torn tail in both logs.
	for _, f := range []string{journalName, docsWALName} {
		w, err := os.OpenFile(filepath.Join(dir, f), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		w.Write([]byte{opInsert, 0x05})
		w.Close()
	}

	jc2, err := OpenJournaledCollection(dir, LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer jc2.Close()
	if n, err := jc2.CountDoc("log", "log//entry"); err != nil || n != 10 {
		t.Fatalf("entries after crash = %d, %v", n, err)
	}
	if err := jc2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestJournaledCollectionOrphanNameDropped(t *testing.T) {
	dir := t.TempDir()
	jc, err := OpenJournaledCollection(dir, LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := jc.Put("real", []byte("<real/>")); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash window where the name record survived but the
	// segment journal append was lost: a valid record for a bogus SID.
	if err := jc.appendDoc(dopPut, 999, "ghost"); err != nil {
		t.Fatal(err)
	}
	jc.Close()

	jc2, err := OpenJournaledCollection(dir, LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer jc2.Close()
	names := jc2.Names()
	if len(names) != 1 || names[0] != "real" {
		t.Fatalf("Names = %v", names)
	}
	if err := jc2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestJournaledCollectionRemoveRoutesThroughWAL(t *testing.T) {
	dir := t.TempDir()
	jc, err := OpenJournaledCollection(dir, LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := jc.Put("d", []byte("<d><a/><b><c/></b></d>")); err != nil {
		t.Fatal(err)
	}
	if err := jc.Remove("d", 3, 4); err != nil { // <a/>
		t.Fatal(err)
	}
	if err := jc.RemoveElementAt("d", 3); err != nil { // <b><c/></b>
		t.Fatal(err)
	}
	jc.Close()

	jc2, err := OpenJournaledCollection(dir, LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer jc2.Close()
	text, err := jc2.Text("d")
	if err != nil || string(text) != "<d></d>" {
		t.Fatalf("d = %s, %v", text, err)
	}
	if err := jc2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
