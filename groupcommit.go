package lazyxml

// Leader-based group commit (DESIGN.md §15). Every write on a
// group-commit collection is enqueued on the shard's commit lane; the
// lane's leader drains the queue, applies the ops in arrival order
// under the collection lock while their WAL records stage in memory,
// then makes the whole batch durable with a single WAL write plus a
// single fsync and publishes a single MVCC generation for it. Each
// waiter is woken with its individual result, and no waiter is woken
// before its record is durable — ack-after-fsync is the invariant the
// crash matrix pins.
//
// Durability cost per op therefore amortizes as O(1/batch): under
// contention the leader's fsync pays for every writer that arrived
// while the previous flush was in flight ("natural batching"), and an
// optional commit window trades bounded extra latency for larger
// batches at low concurrency.

import (
	"fmt"
	"sync"
	"time"
)

// commitKind enumerates the write ops a commit lane carries.
type commitKind int

const (
	ckPut commitKind = iota
	ckDelete
	ckInsert
	ckRemove
	ckRemoveElement
)

// commitOp is one writer's queued operation plus its result slots. The
// submitting goroutine blocks on done; the leader fills sid/err before
// closing it.
type commitOp struct {
	kind commitKind
	name string
	off  int
	l    int
	data []byte // document text (put) or fragment (insert)

	sid  SID
	err  error
	done chan struct{}
}

// GroupCommitStats is one commit lane's lifetime counters, exported
// through the backend stats surface.
type GroupCommitStats struct {
	Enabled  bool  `json:"enabled"`
	Batches  int64 `json:"batches"`
	Ops      int64 `json:"ops"`
	MaxBatch int64 `json:"maxBatch"`
}

// commitLane is one shard's write queue and its leader. The leader is a
// single long-lived goroutine: writers enqueue and kick it, it sleeps
// the commit window, then drains and commits batches back-to-back until
// the queue is empty — ops that arrive while a flush is in flight form
// the next batch without waiting the window again.
type commitLane struct {
	jc     *JournaledCollection
	window time.Duration

	mu       sync.Mutex
	queue    []*commitOp
	closed   bool
	batches  int64
	ops      int64
	maxBatch int64
	observer func(ops int, flush time.Duration)

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

func newCommitLane(jc *JournaledCollection, window time.Duration) *commitLane {
	l := &commitLane{
		jc:     jc,
		window: window,
		kick:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go l.run()
	return l
}

// submit enqueues op and blocks until the leader has committed (or
// refused) it. The op's err field carries the individual result.
func (l *commitLane) submit(op *commitOp) {
	op.done = make(chan struct{})
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		op.err = fmt.Errorf("lazyxml: journal is closed")
		return
	}
	l.queue = append(l.queue, op)
	l.mu.Unlock()
	select {
	case l.kick <- struct{}{}:
	default:
	}
	<-op.done
}

// run is the leader loop.
func (l *commitLane) run() {
	defer close(l.done)
	for {
		select {
		case <-l.kick:
		case <-l.stop:
			return
		}
		if l.window > 0 {
			t := time.NewTimer(l.window)
			select {
			case <-t.C:
			case <-l.stop:
				t.Stop()
				return
			}
		}
		for {
			l.mu.Lock()
			batch := l.queue
			l.queue = nil
			l.mu.Unlock()
			if len(batch) == 0 {
				break
			}
			flush := l.jc.commitBatch(batch)
			l.mu.Lock()
			l.batches++
			l.ops += int64(len(batch))
			if n := int64(len(batch)); n > l.maxBatch {
				l.maxBatch = n
			}
			obs := l.observer
			l.mu.Unlock()
			if obs != nil {
				obs(len(batch), flush)
			}
			for _, op := range batch {
				close(op.done)
			}
		}
	}
}

// close stops the leader, waits for an in-flight batch to finish, and
// refuses anything still queued.
func (l *commitLane) close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stop)
	<-l.done
	l.mu.Lock()
	q := l.queue
	l.queue = nil
	l.mu.Unlock()
	for _, op := range q {
		op.err = fmt.Errorf("lazyxml: journal is closed")
		close(op.done)
	}
}

// stats returns the lane's counters.
func (l *commitLane) stats() GroupCommitStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return GroupCommitStats{Enabled: true, Batches: l.batches, Ops: l.ops, MaxBatch: l.maxBatch}
}

// setObserver installs a callback invoked after every committed batch
// with its op count and flush (write+fsync) duration — the feed for the
// server's batch-size and flush-latency histograms.
func (l *commitLane) setObserver(fn func(ops int, flush time.Duration)) {
	l.mu.Lock()
	l.observer = fn
	l.mu.Unlock()
}

// commitBatch executes one batch: ops apply in order while their
// records stage in memory, then the staged records of both logs are
// flushed (one write + one fsync each, segment journal first — the
// same segment-before-name order the record-at-a-time path guarantees)
// and the batch's generation is published. It returns the flush
// duration. Runs only on the lane's leader goroutine.
func (jc *JournaledCollection) commitBatch(batch []*commitOp) time.Duration {
	// cmu serializes the batch against Compact and re-seed capture —
	// neither may observe a half-staged batch. Lock order stays
	// cmu → mu → dmu → j.mu.
	jc.cmu.Lock()
	defer jc.cmu.Unlock()

	// A poisoned shard refuses the whole batch up front — applying more
	// ops to memory the WAL can never cover would only widen the gap.
	if err := jc.groupPoisoned(); err != nil {
		for _, op := range batch {
			op.err = err
		}
		return 0
	}

	// Open the publish batch first (it refreshes the published view so
	// mid-batch readers are served, never building from half-applied
	// state), then pin the pre-batch name cut and open both staging
	// windows.
	jc.db.store.BeginGenBatch()
	jc.mu.Lock()
	jc.pinCutLocked()
	jc.mu.Unlock()
	jc.j.beginStage()
	jc.beginDocStage()

	for _, op := range batch {
		jc.runOp(op)
	}

	start := time.Now()
	_, segErr := jc.j.flushStaged()
	docErr := jc.flushDocStaged(segErr)
	flush := time.Since(start)

	flushErr := segErr
	if flushErr == nil {
		flushErr = docErr
	}
	if flushErr == nil {
		// Publish: one generation advance for the whole batch, and the
		// post-batch name cut, in one collection-lock critical section so
		// no reader pairs a fresh cut with a stale view or vice versa.
		// Only now — after the fsync — may any waiter be woken.
		jc.mu.Lock()
		jc.db.store.EndGenBatch()
		jc.unpinCutLocked()
		jc.mu.Unlock()
		return flush
	}
	// The flush failed: both logs are poisoned (no further appends on
	// either — one advancing without the other would diverge), the
	// generation stays unpublished and the cut stays pinned, so readers
	// keep seeing the pre-batch state the WAL can actually replay. Every
	// op that applied cleanly is failed with the flush error — its
	// effect was never made visible or durable.
	jc.j.poison(flushErr)
	jc.poisonDocs(flushErr)
	for _, op := range batch {
		if op.err == nil {
			op.err = flushErr
		}
	}
	return flush
}

// groupPoisoned reports the sticky failure of either log, if any.
func (jc *JournaledCollection) groupPoisoned() error {
	if err := jc.j.poisonErr(); err != nil {
		return err
	}
	jc.dmu.Lock()
	defer jc.dmu.Unlock()
	return jc.docFailed
}

// poisonDocs marks the name log failed (sticky) if it isn't already.
func (jc *JournaledCollection) poisonDocs(err error) {
	jc.dmu.Lock()
	if jc.docFailed == nil {
		jc.docFailed = err
	}
	jc.dmu.Unlock()
}

// runOp applies one queued op through the normal (now staging) write
// paths, recording its individual result.
func (jc *JournaledCollection) runOp(op *commitOp) {
	switch op.kind {
	case ckPut:
		op.err = jc.directPut(op.name, op.data)
	case ckDelete:
		op.err = jc.directDelete(op.name)
	case ckInsert:
		op.sid, op.err = jc.Collection.Insert(op.name, op.off, op.data)
	case ckRemove:
		op.err = jc.Collection.Remove(op.name, op.off, op.l)
	case ckRemoveElement:
		op.err = jc.Collection.RemoveElementAt(op.name, op.off)
	default:
		op.err = fmt.Errorf("lazyxml: unknown commit op %d", op.kind)
	}
}

// CommitLaneStats reports the collection's group-commit counters; a
// collection opened without WithGroupCommit reports Enabled=false.
func (jc *JournaledCollection) CommitLaneStats() GroupCommitStats {
	if jc.lane == nil {
		return GroupCommitStats{}
	}
	return jc.lane.stats()
}

// SetCommitObserver installs a per-batch callback (op count + flush
// duration); nil removes it. No-op without group commit.
func (jc *JournaledCollection) SetCommitObserver(fn func(ops int, flush time.Duration)) {
	if jc.lane != nil {
		jc.lane.setObserver(fn)
	}
}
