package lazyxml

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/faultline"
)

// ShardedCollection routes named documents across N independent stores.
// Each shard is a complete Collection (or JournaledCollection): its own
// super document, its own update log, its own journal directory — so the
// paper's per-store laziness argument scales out, and a write to one
// shard never queues behind a write to another.
//
// Routing: a document's shard is chosen once, by FNV-1a hash of its name
// modulo the shard count, and then never changes — the name→shard map is
// effectively persisted because each shard durably records its own
// documents (docs.wal/docs.snap), and reopening rebuilds the map from
// the shards themselves. Changing the shard count of an existing
// directory therefore never moves data: the persisted count wins.
//
// Whole-collection Query/Count fan out across shards with bounded
// concurrency and merge in shard order (matches within a shard stay in
// document order). Positions and segment ids in matches are shard-local:
// each shard is its own coordinate space. Document-scoped operations are
// routed to exactly one shard and behave exactly as on a single store.
type ShardedCollection struct {
	mu     sync.RWMutex
	shards []Backend
	jcs    []*JournaledCollection // parallel to shards; nil entries when in-memory
	route  map[string]int         // name → shard index
	dir    string                 // journal root ("" when in-memory)
	fanout int                    // max concurrent shards in whole-collection ops

	// Open parameters, kept so a shard can be reopened in place after a
	// snapshot re-seed swap, and the filesystem every shard runs on.
	mode   Mode
	dbOpts []Option
	jOpts  []JournalOption
	fs     faultline.FS

	epoch   int64         // replication epoch (see epoch.go); guarded by mu
	planner *QueryPlanner // shared planned-query state; nil until EnablePlanner
}

const (
	shardsMetaName  = "shards.meta"
	shardsMetaMagic = "LXSM1"
	shardDirFormat  = "shard-%04d"
)

// NewShardedCollection returns an in-memory sharded collection over n
// independent stores (n < 1 is treated as 1).
func NewShardedCollection(n int, mode Mode, opts ...Option) *ShardedCollection {
	if n < 1 {
		n = 1
	}
	sc := &ShardedCollection{
		shards: make([]Backend, n),
		jcs:    make([]*JournaledCollection, n),
		route:  map[string]int{},
		fanout: defaultFanout(n),
	}
	for i := range sc.shards {
		sc.shards[i] = NewCollection(mode, opts...)
	}
	return sc
}

// OpenShardedCollection opens (or creates) a durable sharded collection
// in dir. Each shard keeps its own journal directory (shard-0000,
// shard-0001, …) with the exact single-store layout inside; with one
// shard the root directory itself is the shard, byte-compatible with a
// pre-sharding journal directory, so old data opens unchanged.
//
// The shard count is persisted in shards.meta once more than one shard
// exists; on reopen the persisted count always wins over the requested
// one, so data never silently lands on the wrong shard. Opening a legacy
// single-store directory with n > 1 is refused rather than guessed at.
func OpenShardedCollection(dir string, n int, mode Mode, dbOpts []Option, jOpts ...JournalOption) (*ShardedCollection, error) {
	if n < 1 {
		n = 1
	}
	fs := journalFS(jOpts)
	n, err := resolveShardCount(fs, dir, n)
	if err != nil {
		return nil, err
	}
	sc := &ShardedCollection{
		shards: make([]Backend, n),
		jcs:    make([]*JournaledCollection, n),
		route:  map[string]int{},
		dir:    dir,
		fanout: defaultFanout(n),
		mode:   mode,
		dbOpts: dbOpts,
		jOpts:  jOpts,
		fs:     fs,
	}
	if sc.epoch, err = readEpoch(fs, dir); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		sdir := sc.shardDir(i)
		if err := recoverReseed(fs, sdir); err != nil {
			sc.closeShards()
			return nil, fmt.Errorf("lazyxml: shard %d re-seed recovery: %w", i, err)
		}
		jc, err := OpenJournaledCollection(sdir, mode, dbOpts, jOpts...)
		if err != nil {
			sc.closeShards()
			return nil, fmt.Errorf("lazyxml: opening shard %d: %w", i, err)
		}
		sc.shards[i] = jc
		sc.jcs[i] = jc
	}
	// Rebuild the name→shard map from the shards' own durable name maps:
	// the routing state is exactly as crash-consistent as the shards are.
	for i, sh := range sc.shards {
		for _, name := range sh.Names() {
			if _, dup := sc.route[name]; !dup {
				sc.route[name] = i
			}
		}
	}
	return sc, nil
}

// journalFS discovers which filesystem a set of journal options selects
// by applying them to a probe, so directory-level operations (shard
// meta, epoch, re-seed staging) run on the same FS as the journals.
func journalFS(jOpts []JournalOption) faultline.FS {
	probe := &JournaledDB{}
	for _, o := range jOpts {
		o(probe)
	}
	if probe.fs == nil {
		return faultline.OS
	}
	return probe.fs
}

// shardDir returns shard i's journal directory (the root itself for a
// single-shard collection).
func (sc *ShardedCollection) shardDir(i int) string {
	if len(sc.shards) == 1 {
		return sc.dir
	}
	return filepath.Join(sc.dir, fmt.Sprintf(shardDirFormat, i))
}

// resolveShardCount reconciles the requested shard count with the
// directory's persisted one. The persisted count wins; a fresh multi-
// shard directory records its count; a legacy single-store directory is
// only openable as one shard.
func resolveShardCount(fs faultline.FS, dir string, requested int) (int, error) {
	raw, err := fs.ReadFile(filepath.Join(dir, shardsMetaName))
	if err == nil {
		var n int
		if _, serr := fmt.Sscanf(string(raw), shardsMetaMagic+" %d", &n); serr != nil || n < 1 {
			return 0, fmt.Errorf("lazyxml: corrupt %s: %q", shardsMetaName, strings.TrimSpace(string(raw)))
		}
		return n, nil
	}
	if !errors.Is(err, os.ErrNotExist) {
		return 0, err
	}
	if requested == 1 {
		// Single shard uses the root directory directly and writes no
		// meta file: the layout stays identical to a pre-sharding dir.
		return 1, nil
	}
	for _, f := range []string{journalName, snapshotName, docsWALName, docsSnapName} {
		if _, err := fs.Stat(filepath.Join(dir, f)); err == nil {
			return 0, fmt.Errorf("lazyxml: %s holds a legacy single-store journal; open it with 1 shard (or move its files into %s)",
				dir, fmt.Sprintf(shardDirFormat, 0))
		}
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	meta := fmt.Sprintf("%s %d\n", shardsMetaMagic, requested)
	if err := fs.WriteFile(filepath.Join(dir, shardsMetaName), []byte(meta), 0o644); err != nil {
		return 0, err
	}
	return requested, nil
}

func defaultFanout(n int) int {
	if p := runtime.GOMAXPROCS(0); n > p {
		return p
	}
	return n
}

func (sc *ShardedCollection) closeShards() {
	for _, jc := range sc.jcs {
		if jc != nil {
			jc.Close()
		}
	}
}

// ShardCount returns the number of independent stores.
func (sc *ShardedCollection) ShardCount() int { return len(sc.shards) }

// IsDurable reports whether the shards journal their updates.
func (sc *ShardedCollection) IsDurable() bool { return sc.dir != "" }

// hashShard is the routing rule for names not yet placed: FNV-1a mod N.
func (sc *ShardedCollection) hashShard(name string) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(len(sc.shards)))
}

// ShardOf returns the shard a document lives on, or — for a name not in
// the collection — the shard a Put would route it to. Existing documents
// always win over the hash, so a shard-count change never reroutes data.
func (sc *ShardedCollection) ShardOf(name string) int {
	sc.mu.RLock()
	si, ok := sc.route[name]
	sc.mu.RUnlock()
	if ok {
		return si
	}
	return sc.hashShard(name)
}

// shardFor resolves a name to its shard for document-scoped operations.
// The backend is fetched under the same lock as the route entry: a
// re-seed can swap a shard's backend in place, so sc.shards elements
// are only read locked.
func (sc *ShardedCollection) shardFor(name string) (Backend, error) {
	sc.mu.RLock()
	defer sc.mu.RUnlock()
	si, ok := sc.route[name]
	if !ok {
		return nil, fmt.Errorf("lazyxml: unknown document %q", name)
	}
	return sc.shards[si], nil
}

// shardAt returns shard i's current backend under the lock.
func (sc *ShardedCollection) shardAt(i int) Backend {
	sc.mu.RLock()
	defer sc.mu.RUnlock()
	return sc.shards[i]
}

// Put routes a new document to its shard and adds it there. The route
// map reservation makes the name globally unique across shards; the
// shard write itself runs outside the routing lock, so puts to different
// shards proceed concurrently.
func (sc *ShardedCollection) Put(name string, text []byte) error {
	sc.mu.Lock()
	if _, exists := sc.route[name]; exists {
		sc.mu.Unlock()
		return fmt.Errorf("lazyxml: document %q already exists", name)
	}
	si := sc.hashShard(name)
	sc.route[name] = si
	sh := sc.shards[si]
	sc.mu.Unlock()
	if err := sh.Put(name, text); err != nil {
		sc.mu.Lock()
		delete(sc.route, name)
		sc.mu.Unlock()
		return err
	}
	return nil
}

// Delete removes a named document from its shard.
func (sc *ShardedCollection) Delete(name string) error {
	sh, err := sc.shardFor(name)
	if err != nil {
		return err
	}
	if err := sh.Delete(name); err != nil {
		return err
	}
	sc.mu.Lock()
	delete(sc.route, name)
	sc.mu.Unlock()
	return nil
}

// Text returns the current text of a named document.
func (sc *ShardedCollection) Text(name string) ([]byte, error) {
	sh, err := sc.shardFor(name)
	if err != nil {
		return nil, err
	}
	return sh.Text(name)
}

// Names lists every document across all shards in sorted order.
func (sc *ShardedCollection) Names() []string {
	sc.mu.RLock()
	out := make([]string, 0, len(sc.route))
	for name := range sc.route {
		out = append(out, name)
	}
	sc.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len returns the number of documents across all shards.
func (sc *ShardedCollection) Len() int {
	sc.mu.RLock()
	defer sc.mu.RUnlock()
	return len(sc.route)
}

// SID returns the (shard-local) segment id of a named document.
func (sc *ShardedCollection) SID(name string) (SID, bool) {
	sh, err := sc.shardFor(name)
	if err != nil {
		return 0, false
	}
	return sh.SID(name)
}

// Insert inserts a fragment at an offset relative to the named document.
func (sc *ShardedCollection) Insert(name string, off int, fragment []byte) (SID, error) {
	sh, err := sc.shardFor(name)
	if err != nil {
		return 0, err
	}
	return sh.Insert(name, off, fragment)
}

// Remove removes the byte range [off, off+l) relative to the named
// document.
func (sc *ShardedCollection) Remove(name string, off, l int) error {
	sh, err := sc.shardFor(name)
	if err != nil {
		return err
	}
	return sh.Remove(name, off, l)
}

// RemoveElementAt removes the single element whose start tag begins at
// the given document-relative offset.
func (sc *ShardedCollection) RemoveElementAt(name string, off int) error {
	sh, err := sc.shardFor(name)
	if err != nil {
		return err
	}
	return sh.RemoveElementAt(name, off)
}

// Collapse packs a named document's segment subtree into one fresh
// segment on its shard.
func (sc *ShardedCollection) Collapse(name string) (SID, error) {
	sh, err := sc.shardFor(name)
	if err != nil {
		return 0, err
	}
	col, ok := sh.(interface{ Collapse(string) (SID, error) })
	if !ok {
		return 0, fmt.Errorf("lazyxml: shard backend cannot collapse")
	}
	return col.Collapse(name)
}

// fanOut runs fn once per shard with bounded concurrency and returns the
// first error (by shard index) once every shard has finished.
func (sc *ShardedCollection) fanOut(fn func(i int, sh Backend) error) error {
	sc.mu.RLock()
	shards := make([]Backend, len(sc.shards))
	copy(shards, sc.shards)
	sc.mu.RUnlock()
	if len(shards) == 1 {
		return fn(0, shards[0])
	}
	errs := make([]error, len(shards))
	sem := make(chan struct{}, sc.fanout)
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh Backend) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = fn(i, sh)
		}(i, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Query evaluates a path expression over every shard in parallel and
// merges the matches in shard order; within a shard they stay in
// document order. Positions are shard-local.
func (sc *ShardedCollection) Query(path string) ([]Match, error) {
	per := make([][]Match, len(sc.shards))
	err := sc.fanOut(func(i int, sh Backend) error {
		ms, err := sh.Query(path)
		per[i] = ms
		return err
	})
	if err != nil {
		return nil, err
	}
	var total int
	for _, ms := range per {
		total += len(ms)
	}
	out := make([]Match, 0, total)
	for _, ms := range per {
		out = append(out, ms...)
	}
	return out, nil
}

// Count sums the path's match count across all shards in parallel.
func (sc *ShardedCollection) Count(path string) (int, error) {
	per := make([]int, len(sc.shards))
	err := sc.fanOut(func(i int, sh Backend) error {
		n, err := sh.Count(path)
		per[i] = n
		return err
	})
	if err != nil {
		return 0, err
	}
	var total int
	for _, n := range per {
		total += n
	}
	return total, nil
}

// QueryDoc evaluates a path expression scoped to one named document on
// its shard.
func (sc *ShardedCollection) QueryDoc(name, path string) ([]Match, error) {
	sh, err := sc.shardFor(name)
	if err != nil {
		return nil, err
	}
	return sh.QueryDoc(name, path)
}

// CountDoc returns the number of matches of path inside one document.
func (sc *ShardedCollection) CountDoc(name, path string) (int, error) {
	sh, err := sc.shardFor(name)
	if err != nil {
		return 0, err
	}
	return sh.CountDoc(name, path)
}

// Stats aggregates every shard's sizes and counters. Mode comes from
// shard 0 (all shards share it); Tags sums per-shard dictionaries, so a
// tag name used on every shard counts once per shard — it is a resource
// number, not a distinct-name count.
func (sc *ShardedCollection) Stats() Stats {
	var agg Stats
	for i, ss := range sc.ShardStats() {
		st := ss.Stats
		if i == 0 {
			agg.Mode = st.Mode
		}
		agg.TextLen += st.TextLen
		agg.Segments += st.Segments
		agg.Elements += st.Elements
		agg.Tags += st.Tags
		agg.SBTreeBytes += st.SBTreeBytes
		agg.TagListBytes += st.TagListBytes
		agg.ElemIdxBytes += st.ElemIdxBytes
		agg.Inserts += st.Inserts
		agg.Removes += st.Removes
	}
	return agg
}

// ShardStats returns each shard's document count, store statistics and
// journal footprint, gathered in parallel.
func (sc *ShardedCollection) ShardStats() []ShardStat {
	out := make([]ShardStat, len(sc.shards))
	sc.fanOut(func(i int, sh Backend) error {
		st := sh.ShardStats()[0]
		st.Shard = i
		st.Docs = sh.Len()
		out[i] = st
		return nil
	})
	return out
}

// DocSegments gathers the per-document segment census from every shard
// in parallel, tagging each entry with its shard index. Within a shard
// entries stay name-sorted; across shards they are concatenated in shard
// order.
func (sc *ShardedCollection) DocSegments() []DocSegStat {
	per := make([][]DocSegStat, len(sc.shards))
	sc.fanOut(func(i int, sh Backend) error {
		ds := sh.DocSegments()
		for k := range ds {
			ds[k].Shard = i
		}
		per[i] = ds
		return nil
	})
	var total int
	for _, ds := range per {
		total += len(ds)
	}
	out := make([]DocSegStat, 0, total)
	for _, ds := range per {
		out = append(out, ds...)
	}
	return out
}

// ShardJournal returns shard i's journaled collection, or nil when the
// collection is in-memory — the per-shard surface the replication
// subsystem streams from and applies into.
func (sc *ShardedCollection) ShardJournal(i int) *JournaledCollection {
	if i < 0 || i >= len(sc.jcs) {
		return nil
	}
	sc.mu.RLock()
	defer sc.mu.RUnlock()
	return sc.jcs[i]
}

// CollapseAll collapses every document on every shard, shard-parallel.
func (sc *ShardedCollection) CollapseAll() error {
	return sc.fanOut(func(i int, sh Backend) error { return sh.CollapseAll() })
}

// CommitLaneStats returns each shard's group-commit counters, indexed by
// shard; all-disabled entries for an in-memory or unbatched collection.
func (sc *ShardedCollection) CommitLaneStats() []GroupCommitStats {
	out := make([]GroupCommitStats, len(sc.jcs))
	for i := range sc.jcs {
		if jc := sc.ShardJournal(i); jc != nil {
			out[i] = jc.CommitLaneStats()
		}
	}
	return out
}

// SetCommitObserver installs fn on every shard's commit lane, called
// after each committed batch with the shard index, op count and flush
// duration. No-op on shards without group commit.
func (sc *ShardedCollection) SetCommitObserver(fn func(shard, ops int, flush time.Duration)) {
	for i := range sc.jcs {
		jc := sc.ShardJournal(i)
		if jc == nil {
			continue
		}
		shard := i
		if fn == nil {
			jc.SetCommitObserver(nil)
			continue
		}
		jc.SetCommitObserver(func(ops int, flush time.Duration) { fn(shard, ops, flush) })
	}
}

// CheckConsistency audits every shard in parallel.
func (sc *ShardedCollection) CheckConsistency() error {
	return sc.fanOut(func(i int, sh Backend) error {
		if err := sh.CheckConsistency(); err != nil {
			return fmt.Errorf("lazyxml: shard %d: %w", i, err)
		}
		return nil
	})
}

// Compact folds every shard's journal into a snapshot, shard-parallel.
func (sc *ShardedCollection) Compact() error {
	if !sc.IsDurable() {
		return fmt.Errorf("lazyxml: collection is not durable")
	}
	return sc.fanOut(func(i int, sh Backend) error { return sc.ShardJournal(i).Compact() })
}

// CompactShard folds a single shard's journals into snapshots — the
// per-shard granule the maintenance controller compacts with, so one
// shard's WAL growth never forces a whole-store pause.
func (sc *ShardedCollection) CompactShard(i int) error {
	if !sc.IsDurable() {
		return fmt.Errorf("lazyxml: collection is not durable")
	}
	if i < 0 || i >= len(sc.shards) {
		return fmt.Errorf("lazyxml: shard %d out of range [0,%d)", i, len(sc.shards))
	}
	return sc.ShardJournal(i).Compact()
}

// Close closes every shard's journal. In-memory collections close to a
// no-op.
func (sc *ShardedCollection) Close() error {
	var first error
	for _, jc := range sc.jcs {
		if jc == nil {
			continue
		}
		if err := jc.Close(); first == nil {
			first = err
		}
	}
	return first
}
