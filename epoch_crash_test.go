package lazyxml

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/faultline"
)

// Crash-point matrices over the epoch persistence path — the fencing
// token's durable half. Promote and AdvanceEpoch both write epoch.meta
// via WriteFile(tmp) + Rename, so each scenario has exactly two
// mutating operations, and a crash at either must leave the store
// reopening at the OLD epoch or the NEW one, never refusing to open and
// never at anything in between. The persist-before-effect invariant is
// what keeps a mid-promote crash from split-braining a cluster: a node
// that died before the rename comes back at the old epoch and simply
// rejoins as a follower; one that died after comes back already fenced
// against its old primary.

// seedEpochDir builds a small sharded store to crash against.
func seedEpochDir(t *testing.T, dir string) {
	t.Helper()
	sc, err := OpenShardedCollection(dir, 2, LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Put("doc", []byte("<d><x/></d>")); err != nil {
		t.Fatal(err)
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
}

// runEpochCrashMatrix drives one epoch-mutating scenario through the
// full dropped+torn crash ladder. oldE/newE are the legal epochs after
// a crash anywhere inside the scenario.
func runEpochCrashMatrix(t *testing.T, oldE, newE int64, scenario func(sc *ShardedCollection) error) {
	t.Helper()

	// Sizing run: count the scenario's mutating operations fault-free.
	dir := t.TempDir()
	seedEpochDir(t, dir)
	ffs := faultline.NewFaultFS(nil)
	sc, err := OpenShardedCollection(dir, 2, LD, nil, WithFS(ffs))
	if err != nil {
		t.Fatal(err)
	}
	base := ffs.Mutations()
	if err := scenario(sc); err != nil {
		t.Fatalf("fault-free run: %v", err)
	}
	n := ffs.Mutations() - base
	if got := sc.Epoch(); got != newE {
		t.Fatalf("fault-free run left epoch %d, want %d", got, newE)
	}
	sc.Close()
	if n == 0 {
		t.Fatal("scenario performed no mutating I/O; the matrix is empty")
	}

	for _, torn := range []bool{false, true} {
		mode := "drop"
		if torn {
			mode = "torn"
		}
		for k := int64(1); k <= n; k++ {
			t.Run(fmt.Sprintf("%s/k=%d", mode, k), func(t *testing.T) {
				dir := t.TempDir()
				seedEpochDir(t, dir)
				ffs := faultline.NewFaultFS(nil)
				if torn {
					ffs.TornWrites()
				}
				sc, err := OpenShardedCollection(dir, 2, LD, nil, WithFS(ffs))
				if err != nil {
					t.Fatal(err)
				}
				ffs.CrashAfter(ffs.Mutations() + k)
				err = scenario(sc)
				if !ffs.Crashed() {
					t.Fatal("crash point did not fire")
				}
				if err == nil {
					t.Fatal("scenario succeeded across a crash")
				}
				if !errors.Is(err, faultline.ErrInjected) {
					t.Fatalf("scenario failed with a non-injected error: %v", err)
				}
				// Persist-before-effect: a failed persist must not have
				// moved the in-memory epoch either.
				if got := sc.Epoch(); got != oldE {
					t.Fatalf("in-memory epoch moved to %d across a failed persist, want %d", got, oldE)
				}
				sc.Close()

				// Restart over the surviving bytes: old epoch or new,
				// nothing else, and the store works either way.
				re, err := OpenShardedCollection(dir, 2, LD, nil)
				if err != nil {
					t.Fatalf("reopen after crash: %v", err)
				}
				got := re.Epoch()
				if got != oldE && got != newE {
					t.Fatalf("reopened at epoch %d, want %d or %d", got, oldE, newE)
				}
				if err := re.CheckConsistency(); err != nil {
					t.Fatalf("reopened store inconsistent: %v", err)
				}
				// The scenario must still complete on the survivor, and
				// land at an epoch >= the intended one (a re-promote on
				// a node that had already persisted bumps once more —
				// that is fine, epochs only need to move forward).
				if err := scenario(re); err != nil {
					t.Fatalf("re-running the scenario after reopen: %v", err)
				}
				if final := re.Epoch(); final < newE {
					t.Fatalf("final epoch %d below the intended %d", final, newE)
				}
				if err := re.Put("post-crash", []byte("<d/>")); err != nil {
					t.Fatalf("write after recovery: %v", err)
				}
				if err := re.Close(); err != nil {
					t.Fatalf("close: %v", err)
				}
			})
		}
	}
}

// TestPromoteCrashMatrix kills the filesystem at every mutating file
// operation inside Promote.
func TestPromoteCrashMatrix(t *testing.T) {
	runEpochCrashMatrix(t, 0, 1, func(sc *ShardedCollection) error {
		_, err := sc.Promote()
		return err
	})
}

// TestEpochAdoptCrashMatrix does the same for AdvanceEpoch — the path a
// follower takes when its handshake learns a newer epoch from upstream.
func TestEpochAdoptCrashMatrix(t *testing.T) {
	runEpochCrashMatrix(t, 0, 5, func(sc *ShardedCollection) error {
		return sc.AdvanceEpoch(5)
	})
}
