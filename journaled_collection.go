package lazyxml

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/faultline"
)

// JournaledCollection is a Collection whose state — the documents' text,
// the update log, and the name→segment map — survives restarts. Segment
// updates go through the underlying JournaledDB's write-ahead journal;
// the name map has its own small log (docs.wal) and snapshot (docs.snap)
// in the same directory, folded together by Compact.
//
// Segment ids are deterministic: a snapshot preserves the id counter and
// WAL replay re-applies updates in order, so the persisted name→SID map
// stays valid across restarts.
type JournaledCollection struct {
	*Collection
	j    *JournaledDB
	dir  string
	dwal faultline.File

	// cmu serializes whole-collection compaction and re-seed capture:
	// two Compacts never interleave their two phases, and a
	// CaptureSnapshot never runs mid-compaction.
	cmu sync.Mutex

	// Replication state of the name log, mirroring JournaledDB's: every
	// name record gets the next monotonic sequence number; docWalStart
	// is the sequence just before docs.wal's first record and docHorizon
	// the lowest resumable sequence. dmu serializes name-log appends,
	// truncation and reads.
	dmu         sync.Mutex
	docSeq      int64
	docWalStart int64
	docHorizon  int64
	docTap      func(seq int64, rec []byte)

	// Group commit (DESIGN.md §15): when the journal was opened with
	// WithGroupCommit, lane is the shard's commit queue + leader; every
	// public write routes through it. docStaging/docPending mirror the
	// segment journal's staging window for the name log, and docFailed is
	// its sticky poison after a failed batch flush.
	lane       *commitLane
	docStaging bool
	docPending [][]byte
	docFailed  error
}

const (
	docsWALName  = "docs.wal"
	docsSnapName = "docs.snap"
	docsMagic    = "LXDC1"

	dopPut byte = 1
	dopDel byte = 2
)

// OpenJournaledCollection opens (or creates) a durable collection in
// dir. The mode and options apply when no snapshot exists yet. On open,
// the database journal is replayed first, then the document-name log; a
// name record whose segment no longer exists (a crash between the two
// journal appends) is dropped, so the collection always reopens
// consistent.
func OpenJournaledCollection(dir string, mode Mode, dbOpts []Option, jOpts ...JournalOption) (*JournaledCollection, error) {
	j, err := OpenJournal(dir, mode, dbOpts, jOpts...)
	if err != nil {
		return nil, err
	}
	col := &Collection{db: j.DB, eng: j, docs: map[string]SID{}}
	jc := &JournaledCollection{Collection: col, j: j, dir: dir}
	haveSnap, err := jc.loadDocsSnap()
	if err != nil {
		j.Close()
		return nil, err
	}
	base, haveMeta, err := readSeqMeta(j.fs, filepath.Join(dir, docsSeqName))
	if err != nil {
		j.Close()
		return nil, err
	}
	jc.docWalStart, jc.docHorizon = base, base
	replayed, cleanLen, err := jc.replayDocsWAL()
	if err != nil {
		j.Close()
		return nil, err
	}
	jc.docSeq = jc.docWalStart + replayed
	if haveSnap && !haveMeta {
		// Pre-sequence-number snapshot: the folded-in records are
		// uncounted, so nothing below the current position is resumable.
		jc.docHorizon = jc.docSeq
	}
	jc.dropOrphans()
	dwalPath := filepath.Join(dir, docsWALName)
	if fi, err := j.fs.Stat(dwalPath); err == nil && fi.Size() > cleanLen {
		if err := j.fs.Truncate(dwalPath, cleanLen); err != nil {
			j.Close()
			return nil, err
		}
	}
	dwal, err := j.fs.OpenFile(dwalPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		j.Close()
		return nil, err
	}
	jc.dwal = dwal
	if j.groupCommit {
		jc.lane = newCommitLane(jc, j.window)
	}
	return jc, nil
}

// Journal exposes the underlying journaled database.
func (jc *JournaledCollection) Journal() *JournaledDB { return jc.j }

// Put adds a named document and records the name durably. With group
// commit on, the op rides the shard's commit lane and the call returns
// only after its records are fsynced as part of a batch.
func (jc *JournaledCollection) Put(name string, text []byte) error {
	if jc.lane != nil {
		op := &commitOp{kind: ckPut, name: name, data: text}
		jc.lane.submit(op)
		return op.err
	}
	return jc.directPut(name, text)
}

func (jc *JournaledCollection) directPut(name string, text []byte) error {
	if err := jc.Collection.Put(name, text); err != nil {
		return err
	}
	sid, _ := jc.SID(name)
	return jc.appendDoc(dopPut, sid, name)
}

// Delete removes a named document and records the deletion durably.
func (jc *JournaledCollection) Delete(name string) error {
	if jc.lane != nil {
		op := &commitOp{kind: ckDelete, name: name}
		jc.lane.submit(op)
		return op.err
	}
	return jc.directDelete(name)
}

func (jc *JournaledCollection) directDelete(name string) error {
	sid, ok := jc.SID(name)
	if !ok {
		return fmt.Errorf("lazyxml: unknown document %q", name)
	}
	if err := jc.Collection.Delete(name); err != nil {
		return err
	}
	return jc.appendDoc(dopDel, sid, name)
}

// Insert routes a lazy in-document insert through the commit lane when
// group commit is on; otherwise it is the plain Collection insert.
func (jc *JournaledCollection) Insert(name string, off int, frag []byte) (SID, error) {
	if jc.lane != nil {
		op := &commitOp{kind: ckInsert, name: name, off: off, data: frag}
		jc.lane.submit(op)
		return op.sid, op.err
	}
	return jc.Collection.Insert(name, off, frag)
}

// Remove routes a lazy in-document delete through the commit lane when
// group commit is on.
func (jc *JournaledCollection) Remove(name string, off, l int) error {
	if jc.lane != nil {
		op := &commitOp{kind: ckRemove, name: name, off: off, l: l}
		jc.lane.submit(op)
		return op.err
	}
	return jc.Collection.Remove(name, off, l)
}

// RemoveElementAt routes an element removal through the commit lane when
// group commit is on.
func (jc *JournaledCollection) RemoveElementAt(name string, off int) error {
	if jc.lane != nil {
		op := &commitOp{kind: ckRemoveElement, name: name, off: off}
		jc.lane.submit(op)
		return op.err
	}
	return jc.Collection.RemoveElementAt(name, off)
}

// Collapse packs a named document into one fresh segment, durably: the
// copy insert and the original's removal go through the WAL via the
// engine, and the name re-points between the two, so a crash at any
// record boundary replays to either the old document or the collapsed
// one — never a dangling name. (A crash exactly between the insert and
// the name record leaves the copy as an anonymous segment; the document
// itself stays intact under its old segment.)
func (jc *JournaledCollection) Collapse(name string) (SID, error) {
	return jc.collapseVia(name, func(nsid SID) error {
		return jc.appendDoc(dopPut, nsid, name)
	})
}

// CollapseAll collapses every document's segment subtree and then
// compacts, folding the collapse records into fresh snapshots.
func (jc *JournaledCollection) CollapseAll() error {
	for _, name := range jc.Names() {
		if _, err := jc.Collapse(name); err != nil {
			return err
		}
	}
	return jc.Compact()
}

// Compact folds both journals into snapshots: the name map is written to
// docs.snap (atomically, via rename) and its log truncated, then the
// store snapshot is taken and the database journal truncated. Both
// replication horizons advance to the current sequences.
func (jc *JournaledCollection) Compact() error {
	jc.cmu.Lock()
	defer jc.cmu.Unlock()
	// After a failed group-commit flush the in-memory map is ahead of the
	// WAL; folding it into a snapshot would make unacknowledged writes
	// durable. Refuse instead.
	if err := jc.groupPoisoned(); err != nil {
		return err
	}
	// The collection write lock spans the whole docs phase so no name
	// can slip between the map encode and the log truncation; lock
	// order everywhere is cmu → mu → dmu → j.mu.
	jc.mu.Lock()
	buf := jc.encodeDocsSnapLocked()
	jc.dmu.Lock()
	if jc.dwal == nil {
		jc.dmu.Unlock()
		jc.mu.Unlock()
		return fmt.Errorf("lazyxml: journal is closed")
	}
	if err := jc.writeDocsSnapBytes(buf); err != nil {
		jc.dmu.Unlock()
		jc.mu.Unlock()
		return err
	}
	if err := jc.dwal.Truncate(0); err != nil {
		jc.dmu.Unlock()
		jc.mu.Unlock()
		return err
	}
	jc.docWalStart, jc.docHorizon = jc.docSeq, jc.docSeq
	if err := writeSeqMeta(jc.j.fs, filepath.Join(jc.dir, docsSeqName), jc.docWalStart); err != nil {
		jc.dmu.Unlock()
		jc.mu.Unlock()
		return err
	}
	jc.dmu.Unlock()
	jc.mu.Unlock()
	if err := jc.j.Compact(); err != nil {
		return err
	}
	// Compaction leaves query results unchanged, but it rewrites the
	// snapshot the store would be rebuilt from; bumping the generation
	// keeps planner statistics and cached results conservatively fresh
	// across the maintenance event.
	jc.db.store.BumpGeneration()
	return nil
}

// CompactShard folds shard i's journals — a single-store collection has
// exactly one shard, so only index 0 is valid. It exists so durable
// backends expose one uniform per-shard compaction surface.
func (jc *JournaledCollection) CompactShard(i int) error {
	if i != 0 {
		return fmt.Errorf("lazyxml: shard %d out of range [0,1)", i)
	}
	return jc.Compact()
}

// Close flushes and closes both journals; the collection remains usable
// in memory but further updates fail.
func (jc *JournaledCollection) Close() error {
	// Stop the commit lane first: its leader may hold dmu mid-flush, and
	// no new batch may start once the files are closing.
	if jc.lane != nil {
		jc.lane.close()
	}
	jc.dmu.Lock()
	defer jc.dmu.Unlock()
	var err error
	if jc.dwal != nil {
		err = jc.dwal.Sync()
		if cerr := jc.dwal.Close(); err == nil {
			err = cerr
		}
		jc.dwal = nil
	}
	if cerr := jc.j.Close(); err == nil {
		err = cerr
	}
	return err
}

// encodeDocRecord renders one name record: op, sid, name, crc32 of the
// payload.
func encodeDocRecord(op byte, sid SID, name string) []byte {
	buf := []byte{op}
	buf = binary.AppendVarint(buf, int64(sid))
	buf = binary.AppendUvarint(buf, uint64(len(name)))
	buf = append(buf, name...)
	sum := crc32.ChecksumIEEE(buf)
	return binary.AppendUvarint(buf, uint64(sum))
}

// appendDoc writes one name record, assigns it the next sequence number
// and feeds the replication tap. The record follows the segment-journal
// append, so a crash in between leaves at worst an anonymous segment,
// dropped on the next open.
func (jc *JournaledCollection) appendDoc(op byte, sid SID, name string) error {
	jc.dmu.Lock()
	defer jc.dmu.Unlock()
	if jc.docFailed != nil {
		return jc.docFailed
	}
	if jc.dwal == nil {
		return fmt.Errorf("lazyxml: journal is closed")
	}
	buf := encodeDocRecord(op, sid, name)
	if jc.docStaging {
		// Inside a group-commit batch: buffer the record for the batch
		// flush. Sequence numbers and the replication tap fire there,
		// after the one fsync, in this same order.
		jc.docPending = append(jc.docPending, buf)
		return nil
	}
	if _, err := jc.dwal.Write(buf); err != nil {
		return err
	}
	if jc.j.sync {
		if err := jc.dwal.Sync(); err != nil {
			return err
		}
	}
	jc.docSeq++
	if jc.docTap != nil {
		jc.docTap(jc.docSeq, buf)
	}
	return nil
}

// beginDocStage opens the name log's staging window for a group-commit
// batch.
func (jc *JournaledCollection) beginDocStage() {
	jc.dmu.Lock()
	jc.docStaging = true
	jc.dmu.Unlock()
}

// flushDocStaged closes the staging window and makes the buffered name
// records durable with one write and one fsync, then assigns their
// sequence numbers and feeds the replication tap in order. If the
// segment-journal flush already failed (abort != nil), or this flush
// fails, the staged records are discarded and the name log is poisoned:
// the in-memory map is ahead of what the WAL can replay, so accepting
// further appends would ack writes a reopen must lose.
func (jc *JournaledCollection) flushDocStaged(abort error) error {
	jc.dmu.Lock()
	defer jc.dmu.Unlock()
	pending := jc.docPending
	jc.docPending, jc.docStaging = nil, false
	if abort != nil {
		jc.docFailed = abort
		return nil
	}
	if len(pending) == 0 {
		return jc.docFailed
	}
	if jc.docFailed != nil {
		return jc.docFailed
	}
	if jc.dwal == nil {
		return fmt.Errorf("lazyxml: journal is closed")
	}
	n := 0
	for _, rec := range pending {
		n += len(rec)
	}
	buf := make([]byte, 0, n)
	for _, rec := range pending {
		buf = append(buf, rec...)
	}
	if _, err := jc.dwal.Write(buf); err != nil {
		jc.docFailed = fmt.Errorf("lazyxml: group-commit flush failed, name log poisoned: %w", err)
		return jc.docFailed
	}
	if jc.j.sync {
		if err := jc.dwal.Sync(); err != nil {
			jc.docFailed = fmt.Errorf("lazyxml: group-commit flush failed, name log poisoned: %w", err)
			return jc.docFailed
		}
	}
	for _, rec := range pending {
		jc.docSeq++
		if jc.docTap != nil {
			jc.docTap(jc.docSeq, rec)
		}
	}
	return nil
}

// readDocRecord parses one name record, mirroring the torn-tail
// discipline of the segment journal: any short or corrupt read aborts
// the replay without failing the open.
func readDocRecord(br *bufio.Reader) (op byte, sid SID, name string, err error) {
	op, err = br.ReadByte()
	if err != nil {
		return 0, 0, "", io.EOF
	}
	payload := []byte{op}
	sidV, err := binary.ReadVarint(br)
	if err != nil {
		return 0, 0, "", fmt.Errorf("torn sid")
	}
	payload = binary.AppendVarint(payload, sidV)
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, "", fmt.Errorf("torn name length")
	}
	if nameLen > 1<<16 {
		return 0, 0, "", fmt.Errorf("corrupt name length")
	}
	payload = binary.AppendUvarint(payload, nameLen)
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return 0, 0, "", fmt.Errorf("torn name")
	}
	payload = append(payload, nameBuf...)
	sum, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, "", fmt.Errorf("torn checksum")
	}
	if uint32(sum) != crc32.ChecksumIEEE(payload) {
		return 0, 0, "", fmt.Errorf("checksum mismatch")
	}
	return op, SID(sidV), string(nameBuf), nil
}

// replayDocsWAL applies the name log on top of the snapshot's map. It
// returns the number of records applied and the byte length of the
// clean prefix they occupy.
func (jc *JournaledCollection) replayDocsWAL() (n, cleanLen int64, err error) {
	f, err := jc.j.fs.Open(filepath.Join(jc.dir, docsWALName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	for {
		op, sid, name, err := readDocRecord(br)
		if err == io.EOF {
			return n, cleanLen, nil
		}
		if err != nil {
			return n, cleanLen, nil // torn or corrupt tail: stop cleanly
		}
		switch op {
		case dopPut:
			jc.docs[name] = sid
		case dopDel:
			delete(jc.docs, name)
		default:
			return n, cleanLen, nil // unknown op: treat as corrupt tail
		}
		n++
		cleanLen += int64(len(encodeDocRecord(op, sid, name)))
	}
}

// dropOrphans removes map entries whose segment no longer exists — the
// crash window where a name record outlived (or preceded) its segment
// journal record.
func (jc *JournaledCollection) dropOrphans() {
	for name, sid := range jc.docs {
		if _, _, ok := jc.db.store.SegmentSpan(sid); !ok {
			delete(jc.docs, name)
		}
	}
}

// encodeDocsSnapLocked renders the whole name map in docs.snap format:
// magic, entry count, (sid, name) pairs, crc32 of everything before it.
// The caller holds jc.mu.
func (jc *JournaledCollection) encodeDocsSnapLocked() []byte {
	buf := []byte(docsMagic)
	buf = binary.AppendUvarint(buf, uint64(len(jc.docs)))
	for _, name := range jc.Collection.names() {
		buf = binary.AppendVarint(buf, int64(jc.docs[name]))
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
	}
	sum := crc32.ChecksumIEEE(buf)
	return binary.AppendUvarint(buf, uint64(sum))
}

// writeDocsSnapBytes persists an encoded name map atomically.
func (jc *JournaledCollection) writeDocsSnapBytes(buf []byte) error {
	tmp := filepath.Join(jc.dir, docsSnapName+".tmp")
	if err := jc.j.fs.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return jc.j.fs.Rename(tmp, filepath.Join(jc.dir, docsSnapName))
}

// loadDocsSnap restores the name map from docs.snap; the bool reports
// whether a snapshot file existed.
func (jc *JournaledCollection) loadDocsSnap() (bool, error) {
	raw, err := jc.j.fs.ReadFile(filepath.Join(jc.dir, docsSnapName))
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	br := bufio.NewReader(bytes.NewReader(raw))
	magic := make([]byte, len(docsMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != docsMagic {
		return false, fmt.Errorf("lazyxml: bad docs snapshot magic %q", magic)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return false, fmt.Errorf("lazyxml: corrupt docs snapshot: %w", err)
	}
	docs := make(map[string]SID, count)
	for i := uint64(0); i < count; i++ {
		sidV, err := binary.ReadVarint(br)
		if err != nil {
			return false, fmt.Errorf("lazyxml: corrupt docs snapshot entry: %w", err)
		}
		nameLen, err := binary.ReadUvarint(br)
		if err != nil || nameLen > 1<<16 {
			return false, fmt.Errorf("lazyxml: corrupt docs snapshot name length")
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return false, fmt.Errorf("lazyxml: corrupt docs snapshot name: %w", err)
		}
		docs[string(nameBuf)] = SID(sidV)
	}
	sum, err := binary.ReadUvarint(br)
	if err != nil {
		return false, fmt.Errorf("lazyxml: corrupt docs snapshot checksum: %w", err)
	}
	payloadLen := len(raw) - uvarintLen(sum)
	if payloadLen < 0 || uint32(sum) != crc32.ChecksumIEEE(raw[:payloadLen]) {
		return false, fmt.Errorf("lazyxml: docs snapshot checksum mismatch")
	}
	jc.Collection.docs = docs
	return true, nil
}

// uvarintLen returns the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// names returns the document names sorted, with the lock already held by
// the caller.
func (c *Collection) names() []string {
	out := make([]string, 0, len(c.docs))
	for name := range c.docs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
