package lazyxml

import (
	"fmt"
	"strings"

	"repro/internal/twig"
)

// Pattern is a parsed twig pattern: a spine path whose steps may carry
// existential predicates, e.g.
//
//	person[profile//interest]//watches/watch
//
// matches watch elements under a watches child of a person that has at
// least one interest inside a profile. Predicates filter; only the spine
// is returned in the result tuples.
type Pattern struct {
	Spine []PatternStep
}

// PatternStep is one spine step.
type PatternStep struct {
	Axis  Axis // relationship to the previous spine step (ignored for the first)
	Tag   string
	Preds []PredPath
}

// PredPath is one bracketed predicate: a linear path anchored at its
// spine step, optionally ending in a value-equality test on the last
// step ([name='Ann']). The first step's axis is Child for "[b...]" and
// Descendant for "[//b...]", matching XPath intuition.
type PredPath struct {
	Steps    []PathStep
	Value    string // equality value for the last step
	HasValue bool
}

// String renders the pattern back to its textual form.
func (p Pattern) String() string {
	var sb strings.Builder
	for i, st := range p.Spine {
		if i > 0 {
			if st.Axis == Descendant {
				sb.WriteString("//")
			} else {
				sb.WriteString("/")
			}
		}
		sb.WriteString(st.Tag)
		for _, pr := range st.Preds {
			sb.WriteString("[")
			for j, ps := range pr.Steps {
				if j > 0 || ps.Axis == Descendant {
					if ps.Axis == Descendant {
						sb.WriteString("//")
					} else {
						sb.WriteString("/")
					}
				}
				sb.WriteString(ps.Tag)
			}
			if pr.HasValue {
				sb.WriteString("='")
				sb.WriteString(pr.Value)
				sb.WriteString("'")
			}
			sb.WriteString("]")
		}
	}
	return sb.String()
}

// ParsePattern parses a twig pattern expression: a path whose steps may
// be followed by one or more [predicate] groups holding linear paths.
func ParsePattern(expr string) (Pattern, error) {
	s := strings.TrimSpace(expr)
	s = strings.TrimPrefix(s, "//")
	s = strings.TrimPrefix(s, "/")
	if s == "" {
		return Pattern{}, fmt.Errorf("lazyxml: empty pattern %q", expr)
	}
	var pat Pattern
	i := 0
	readTag := func() (string, error) {
		start := i
		for i < len(s) && s[i] != '/' && s[i] != '[' && s[i] != ']' && s[i] != '=' {
			i++
		}
		tag := s[start:i]
		if tag == "" || strings.ContainsAny(tag, " \t<>'\"") {
			return "", fmt.Errorf("lazyxml: invalid tag %q in pattern %q", tag, expr)
		}
		return tag, nil
	}
	readAxis := func() (Axis, error) {
		if strings.HasPrefix(s[i:], "//") {
			i += 2
			return Descendant, nil
		}
		if i < len(s) && s[i] == '/' {
			i++
			return Child, nil
		}
		return 0, fmt.Errorf("lazyxml: expected '/' or '//' at %q in pattern %q", s[i:], expr)
	}
	readPred := func() (PredPath, error) {
		// s[i] == '['
		i++
		var pr PredPath
		axis := Child
		if strings.HasPrefix(s[i:], "//") {
			axis = Descendant
			i += 2
		} else if i < len(s) && s[i] == '/' {
			i++
		}
		for {
			tag, err := readTag()
			if err != nil {
				return pr, err
			}
			pr.Steps = append(pr.Steps, PathStep{Axis: axis, Tag: tag})
			if i < len(s) && s[i] == '=' {
				// Value equality on the (necessarily last) step.
				i++
				if i >= len(s) || (s[i] != '\'' && s[i] != '"') {
					return pr, fmt.Errorf("lazyxml: predicate value must be quoted in %q", expr)
				}
				quote := s[i]
				i++
				start := i
				for i < len(s) && s[i] != quote {
					i++
				}
				if i >= len(s) {
					return pr, fmt.Errorf("lazyxml: unterminated predicate value in %q", expr)
				}
				pr.Value = s[start:i]
				pr.HasValue = true
				i++
				if i >= len(s) || s[i] != ']' {
					return pr, fmt.Errorf("lazyxml: expected ']' after predicate value in %q", expr)
				}
				i++
				return pr, nil
			}
			if i < len(s) && s[i] == ']' {
				i++
				return pr, nil
			}
			if i >= len(s) {
				return pr, fmt.Errorf("lazyxml: unterminated predicate in %q", expr)
			}
			if s[i] == '[' {
				return pr, fmt.Errorf("lazyxml: nested predicates are not supported in %q", expr)
			}
			axis, err = readAxis()
			if err != nil {
				return pr, err
			}
		}
	}

	axis := Child
	for first := true; ; first = false {
		tag, err := readTag()
		if err != nil {
			return Pattern{}, err
		}
		step := PatternStep{Axis: axis, Tag: tag}
		for i < len(s) && s[i] == '[' {
			pr, err := readPred()
			if err != nil {
				return Pattern{}, err
			}
			step.Preds = append(step.Preds, pr)
		}
		pat.Spine = append(pat.Spine, step)
		_ = first
		if i >= len(s) {
			return pat, nil
		}
		if s[i] == ']' {
			return Pattern{}, fmt.Errorf("lazyxml: unbalanced ']' in %q", expr)
		}
		axis, err = readAxis()
		if err != nil {
			return Pattern{}, err
		}
	}
}

// QueryPattern evaluates a twig pattern: the spine is matched
// holistically with PathStack and each predicate filters its spine step
// with an existential semi-join (the element qualifies iff at least one
// predicate-path match is rooted at it). Results are complete spine
// tuples with global positions.
func (db *DB) QueryPattern(expr string) ([]Tuple, error) {
	pat, err := ParsePattern(expr)
	if err != nil {
		return nil, err
	}
	// One snapshot view for spine and predicates: every stream the
	// holistic match consumes comes from the same generation.
	v := db.store.AcquireView()
	defer v.Release()
	// Spine streams.
	steps := make([]twig.Step, len(pat.Spine))
	for i, st := range pat.Spine {
		steps[i] = twig.Step{Axis: st.Axis, Nodes: v.GlobalElements(st.Tag)}
	}
	// Predicate filters: per spine step, the set of qualifying element
	// start offsets (global starts are unique element identities).
	for i, st := range pat.Spine {
		if len(st.Preds) == 0 {
			continue
		}
		allowed, err := predAllowedOn(v, st.Tag, st.Preds)
		if err != nil {
			return nil, err
		}
		kept := steps[i].Nodes[:0:0]
		for _, nd := range steps[i].Nodes {
			if allowed[nd.Start] {
				kept = append(kept, nd)
			}
		}
		steps[i].Nodes = kept
	}
	return twig.PathStack(steps)
}

// CountPattern returns the number of matches of the twig pattern.
func (db *DB) CountPattern(expr string) (int, error) {
	ts, err := db.QueryPattern(expr)
	if err != nil {
		return 0, err
	}
	return len(ts), nil
}

// predAllowedOn computes the set of global start offsets of tag-elements
// satisfying every predicate, against any read engine.
func predAllowedOn(eng queryEngine, tag string, preds []PredPath) (map[int]bool, error) {
	var allowed map[int]bool
	anchors := eng.GlobalElements(tag)
	for _, pr := range preds {
		steps := make([]twig.Step, 0, 1+len(pr.Steps))
		steps = append(steps, twig.Step{Nodes: anchors})
		for j, ps := range pr.Steps {
			if pr.HasValue && j == len(pr.Steps)-1 {
				nodes, err := eng.ValueElements(ps.Tag, pr.Value)
				if err != nil {
					return nil, err
				}
				steps = append(steps, twig.Step{Axis: ps.Axis, Nodes: nodes})
				continue
			}
			steps = append(steps, twig.Step{Axis: ps.Axis, Nodes: eng.GlobalElements(ps.Tag)})
		}
		tuples, err := twig.PathStack(steps)
		if err != nil {
			return nil, err
		}
		found := map[int]bool{}
		for _, tu := range tuples {
			found[tu[0].Start] = true
		}
		if allowed == nil {
			allowed = found
		} else {
			for k := range allowed {
				if !found[k] {
					delete(allowed, k)
				}
			}
		}
	}
	if allowed == nil {
		allowed = map[int]bool{}
	}
	return allowed, nil
}
