package lazyxml

import (
	"bytes"
	"testing"
)

func TestCollectionPutQueryDelete(t *testing.T) {
	c := NewCollection(LD)
	if err := c.Put("catalog", []byte("<catalog><book/><book/></catalog>")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("orders", []byte("<orders><order><book/></order></orders>")); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "catalog" || names[1] != "orders" {
		t.Fatalf("Names = %v", names)
	}
	// Whole-collection query sees both documents.
	all, err := c.Query("book")
	if err != nil || len(all) != 3 {
		t.Fatalf("book = %d, %v", len(all), err)
	}
	// Scoped queries see only their document.
	n, err := c.CountDoc("catalog", "catalog//book")
	if err != nil || n != 2 {
		t.Fatalf("catalog//book in catalog = %d, %v", n, err)
	}
	n, err = c.CountDoc("orders", "book")
	if err != nil || n != 1 {
		t.Fatalf("book in orders = %d, %v", n, err)
	}
	n, err = c.CountDoc("catalog", "order")
	if err != nil || n != 0 {
		t.Fatalf("order in catalog = %d, %v", n, err)
	}
	// Delete one document.
	if err := c.Delete("catalog"); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	all, err = c.Query("book")
	if err != nil || len(all) != 1 {
		t.Fatalf("book after delete = %d, %v", len(all), err)
	}
	if err := c.DB().CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectionErrors(t *testing.T) {
	c := NewCollection(LD)
	if err := c.Put("a", []byte("<a/>")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("a", []byte("<a/>")); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if err := c.Put("bad", []byte("<unclosed>")); err == nil {
		t.Fatal("malformed document accepted")
	}
	if err := c.Delete("missing"); err == nil {
		t.Fatal("deleting unknown document succeeded")
	}
	if _, err := c.Text("missing"); err == nil {
		t.Fatal("Text of unknown document succeeded")
	}
	if _, err := c.QueryDoc("missing", "a"); err == nil {
		t.Fatal("QueryDoc of unknown document succeeded")
	}
	if _, err := c.Insert("a", 99, []byte("<x/>")); err == nil {
		t.Fatal("out-of-range insert accepted")
	}
}

func TestCollectionInsertRelativeOffsets(t *testing.T) {
	c := NewCollection(LD)
	if err := c.Put("one", []byte("<one></one>")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("two", []byte("<two></two>")); err != nil {
		t.Fatal(err)
	}
	// Insert into the SECOND document at its local content offset.
	if _, err := c.Insert("two", 5, []byte("<x/>")); err != nil {
		t.Fatal(err)
	}
	text, err := c.Text("two")
	if err != nil {
		t.Fatal(err)
	}
	if string(text) != "<two><x/></two>" {
		t.Fatalf("two = %s", text)
	}
	// The first document is untouched.
	text, _ = c.Text("one")
	if string(text) != "<one></one>" {
		t.Fatalf("one = %s", text)
	}
	// Spans track later edits: grow doc one and re-check doc two.
	if _, err := c.Insert("one", 5, []byte("<y/>")); err != nil {
		t.Fatal(err)
	}
	text, _ = c.Text("two")
	if !bytes.Equal(text, []byte("<two><x/></two>")) {
		t.Fatalf("two after editing one = %s", text)
	}
	if n, _ := c.CountDoc("two", "two//x"); n != 1 {
		t.Fatal("scoped query lost the match after unrelated edit")
	}
	if err := c.DB().CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectionTagCollisionAcrossDocs(t *testing.T) {
	// Same tag names in different documents must not leak across scopes.
	c := NewCollection(LD)
	for _, name := range []string{"d1", "d2", "d3"} {
		if err := c.Put(name, []byte("<doc><item/><item/></doc>")); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"d1", "d2", "d3"} {
		n, err := c.CountDoc(name, "doc//item")
		if err != nil || n != 2 {
			t.Fatalf("%s: %d, %v", name, n, err)
		}
	}
	all, _ := c.Query("doc//item")
	if len(all) != 6 {
		t.Fatalf("collection-wide = %d", len(all))
	}
}

func TestCollectionRemove(t *testing.T) {
	c := NewCollection(LD)
	if err := c.Put("cat", []byte("<cat><a/><b/></cat>")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("dog", []byte("<dog><a/></dog>")); err != nil {
		t.Fatal(err)
	}
	// "<cat>" is 5 bytes; <a/> spans [5,9) within the document.
	if err := c.Remove("cat", 5, 4); err != nil {
		t.Fatal(err)
	}
	text, err := c.Text("cat")
	if err != nil || string(text) != "<cat><b/></cat>" {
		t.Fatalf("cat = %s, %v", text, err)
	}
	// The other document is untouched even though its global span shifted.
	if text, _ := c.Text("dog"); string(text) != "<dog><a/></dog>" {
		t.Fatalf("dog = %s", text)
	}
	if n, _ := c.CountDoc("dog", "dog//a"); n != 1 {
		t.Fatal("dog lost its match")
	}
	// Out-of-range and degenerate removals are rejected.
	if err := c.Remove("cat", 5, 0); err == nil {
		t.Fatal("zero-length removal accepted")
	}
	if err := c.Remove("cat", -1, 4); err == nil {
		t.Fatal("negative offset accepted")
	}
	if err := c.Remove("cat", 5, 1000); err == nil {
		t.Fatal("range past document end accepted")
	}
	if err := c.Remove("nosuch", 0, 1); err == nil {
		t.Fatal("unknown document accepted")
	}
	if err := c.DB().CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectionRemoveElementAt(t *testing.T) {
	c := NewCollection(LD)
	if err := c.Put("cat", []byte("<cat><a><x/></a><b/></cat>")); err != nil {
		t.Fatal(err)
	}
	// <a> starts at document offset 5; removing it takes <x/> along.
	if err := c.RemoveElementAt("cat", 5); err != nil {
		t.Fatal(err)
	}
	text, err := c.Text("cat")
	if err != nil || string(text) != "<cat><b/></cat>" {
		t.Fatalf("cat = %s, %v", text, err)
	}
	// No element starts mid-tag.
	if err := c.RemoveElementAt("cat", 1); err == nil {
		t.Fatal("mid-tag offset accepted")
	}
	if err := c.RemoveElementAt("cat", -1); err == nil {
		t.Fatal("negative offset accepted")
	}
	if err := c.RemoveElementAt("cat", 1000); err == nil {
		t.Fatal("offset past document end accepted")
	}
	if err := c.RemoveElementAt("nosuch", 0); err == nil {
		t.Fatal("unknown document accepted")
	}
	if err := c.DB().CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectionSIDAndStats(t *testing.T) {
	c := NewCollection(LD)
	if err := c.Put("a", []byte("<a><b/></a>")); err != nil {
		t.Fatal(err)
	}
	sid, ok := c.SID("a")
	if !ok || sid == 0 {
		t.Fatalf("SID = %d, %v", sid, ok)
	}
	if _, ok := c.SID("nosuch"); ok {
		t.Fatal("SID of unknown document")
	}
	if st := c.Stats(); st.Segments != 1 || st.Elements != 2 {
		t.Fatalf("Stats = %+v", st)
	}
	if n, err := c.Count("a//b"); err != nil || n != 1 {
		t.Fatalf("Count = %d, %v", n, err)
	}
}
