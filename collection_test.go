package lazyxml

import (
	"bytes"
	"testing"
)

func TestCollectionPutQueryDelete(t *testing.T) {
	c := NewCollection(LD)
	if err := c.Put("catalog", []byte("<catalog><book/><book/></catalog>")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("orders", []byte("<orders><order><book/></order></orders>")); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "catalog" || names[1] != "orders" {
		t.Fatalf("Names = %v", names)
	}
	// Whole-collection query sees both documents.
	all, err := c.Query("book")
	if err != nil || len(all) != 3 {
		t.Fatalf("book = %d, %v", len(all), err)
	}
	// Scoped queries see only their document.
	n, err := c.CountDoc("catalog", "catalog//book")
	if err != nil || n != 2 {
		t.Fatalf("catalog//book in catalog = %d, %v", n, err)
	}
	n, err = c.CountDoc("orders", "book")
	if err != nil || n != 1 {
		t.Fatalf("book in orders = %d, %v", n, err)
	}
	n, err = c.CountDoc("catalog", "order")
	if err != nil || n != 0 {
		t.Fatalf("order in catalog = %d, %v", n, err)
	}
	// Delete one document.
	if err := c.Delete("catalog"); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	all, err = c.Query("book")
	if err != nil || len(all) != 1 {
		t.Fatalf("book after delete = %d, %v", len(all), err)
	}
	if err := c.DB().CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectionErrors(t *testing.T) {
	c := NewCollection(LD)
	if err := c.Put("a", []byte("<a/>")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("a", []byte("<a/>")); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if err := c.Put("bad", []byte("<unclosed>")); err == nil {
		t.Fatal("malformed document accepted")
	}
	if err := c.Delete("missing"); err == nil {
		t.Fatal("deleting unknown document succeeded")
	}
	if _, err := c.Text("missing"); err == nil {
		t.Fatal("Text of unknown document succeeded")
	}
	if _, err := c.QueryDoc("missing", "a"); err == nil {
		t.Fatal("QueryDoc of unknown document succeeded")
	}
	if _, err := c.Insert("a", 99, []byte("<x/>")); err == nil {
		t.Fatal("out-of-range insert accepted")
	}
}

func TestCollectionInsertRelativeOffsets(t *testing.T) {
	c := NewCollection(LD)
	if err := c.Put("one", []byte("<one></one>")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("two", []byte("<two></two>")); err != nil {
		t.Fatal(err)
	}
	// Insert into the SECOND document at its local content offset.
	if _, err := c.Insert("two", 5, []byte("<x/>")); err != nil {
		t.Fatal(err)
	}
	text, err := c.Text("two")
	if err != nil {
		t.Fatal(err)
	}
	if string(text) != "<two><x/></two>" {
		t.Fatalf("two = %s", text)
	}
	// The first document is untouched.
	text, _ = c.Text("one")
	if string(text) != "<one></one>" {
		t.Fatalf("one = %s", text)
	}
	// Spans track later edits: grow doc one and re-check doc two.
	if _, err := c.Insert("one", 5, []byte("<y/>")); err != nil {
		t.Fatal(err)
	}
	text, _ = c.Text("two")
	if !bytes.Equal(text, []byte("<two><x/></two>")) {
		t.Fatalf("two after editing one = %s", text)
	}
	if n, _ := c.CountDoc("two", "two//x"); n != 1 {
		t.Fatal("scoped query lost the match after unrelated edit")
	}
	if err := c.DB().CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectionTagCollisionAcrossDocs(t *testing.T) {
	// Same tag names in different documents must not leak across scopes.
	c := NewCollection(LD)
	for _, name := range []string{"d1", "d2", "d3"} {
		if err := c.Put(name, []byte("<doc><item/><item/></doc>")); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"d1", "d2", "d3"} {
		n, err := c.CountDoc(name, "doc//item")
		if err != nil || n != 2 {
			t.Fatalf("%s: %d, %v", name, n, err)
		}
	}
	all, _ := c.Query("doc//item")
	if len(all) != 6 {
		t.Fatalf("collection-wide = %d", len(all))
	}
}
