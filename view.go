package lazyxml

// MVCC snapshot reads at the collection layer. A DocView or
// CollectionView wraps one (or, sharded, several) core.View handles — a
// generation-stamped immutable copy of the store's queryable state —
// plus the name→segment mapping that was current when the handle was
// taken. Queries against a view take no locks at all, so a long-running
// read can never block, or be blocked by, a writer, a Collapse, or a
// Compact; conversely, maintenance never waits for readers.
//
// The name mapping travels separately from the store snapshot: the
// collection publishes an immutable copy of its docs map (a "cut")
// through an atomic pointer, invalidated on every rename-class mutation
// (Put, Delete, Collapse re-point) and rebuilt lazily under the read
// lock. A cut and a view acquired around the same time may straddle a
// concurrent collapse — the cut's segment id then fails to resolve in
// the view — so acquisition retries once and finally falls back to
// resolving under the collection read lock, which excludes rename-class
// mutations entirely and therefore always yields a consistent pair.

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/join"
)

// ViewStats is one store's view-lifecycle counters (see core.ViewStats).
type ViewStats = core.ViewStats

// ShardViewStats is one shard's view-lifecycle counters, the per-shard
// row behind the /stats "views" block.
type ShardViewStats struct {
	Shard int       `json:"shard"`
	Views ViewStats `json:"views"`
}

// queryEngine is the read surface path evaluation runs against: either
// the live store (reads take the store lock) or an immutable core.View
// (reads are lock-free). Both *core.Store and *core.View satisfy it.
type queryEngine interface {
	Query(aTag, dTag string, axis Axis, alg Algorithm) ([]Match, error)
	QueryParallel(aTag, dTag string, axis Axis, workers int) ([]Match, error)
	GlobalElements(tag string) []join.Node
	ValueElements(tag, value string) ([]join.Node, error)
}

var (
	_ queryEngine = (*core.Store)(nil)
	_ queryEngine = (*core.View)(nil)
)

// docsCut is an immutable copy of a collection's name→segment map,
// published through Collection.cut so snapshot readers can resolve names
// without the collection lock.
type docsCut struct {
	docs map[string]SID
}

// invalidateCut drops the published cut; the caller holds c.mu.Lock
// around the docs-map mutation that made it stale.
func (c *Collection) invalidateCut() { c.cut.Store((*docsCut)(nil)) }

// loadCut returns the current cut, rebuilding it under the read lock if
// a mutation invalidated it. Building inside the read lock is what makes
// the racy-looking Store safe: writers invalidate only under the write
// lock, so no invalidation can interleave with the rebuild.
func (c *Collection) loadCut() *docsCut {
	if cut := c.cut.Load(); cut != nil {
		return cut
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.loadCutRLocked()
}

// loadCutRLocked is loadCut with c.mu already read-held. While a
// group-commit batch is open the pinned pre-batch cut is served instead
// of rebuilding from the live map: the live map already holds ops whose
// generation has not been published, and a cut naming them would not
// resolve in the pre-batch view readers are still being served. The
// pinned cut is deliberately not stored into c.cut — it must not
// outlive the batch.
func (c *Collection) loadCutRLocked() *docsCut {
	if c.pinned != nil {
		return c.pinned
	}
	if cut := c.cut.Load(); cut != nil {
		return cut
	}
	m := make(map[string]SID, len(c.docs))
	for name, sid := range c.docs {
		m[name] = sid
	}
	cut := &docsCut{docs: m}
	c.cut.Store(cut)
	return cut
}

// DocView is a consistent, immutable snapshot of one named document:
// the store view it lives in plus the document's span inside it. The
// holder must call Release exactly once.
type DocView struct {
	v      *core.View
	alg    Algorithm
	name   string
	sid    SID
	lo, hi int
}

// View returns a snapshot handle of one named document. The fast path
// is lock-free: the published cut resolves the name and the published
// store view resolves the span. When the two straddle a concurrent
// collapse or delete, resolution falls back to the collection read
// lock, which excludes rename-class mutations and so always pairs a
// live segment id with a view new enough to contain it.
func (c *Collection) View(name string) (*DocView, error) {
	for try := 0; try < 2; try++ {
		cut := c.loadCut()
		sid, ok := cut.docs[name]
		if !ok {
			break // maybe just Put: the slow path re-reads under the lock
		}
		v := c.db.store.AcquireView()
		if lo, hi, ok := v.SegmentSpan(sid); ok {
			return &DocView{v: v, alg: c.db.alg, name: name, sid: sid, lo: lo, hi: hi}, nil
		}
		// The cut raced a collapse (the id was replaced) or the view
		// predates the document; drop both and retry once fresh.
		v.Release()
	}
	c.mu.RLock()
	// resolveRLocked, not c.docs: while a group-commit batch is open the
	// live map holds unpublished ops, and only the pinned pre-batch cut
	// pairs consistently with the view the deferred generation serves.
	sid, ok := c.resolveRLocked(name)
	if !ok {
		c.mu.RUnlock()
		return nil, fmt.Errorf("lazyxml: unknown document %q", name)
	}
	// Acquired inside the read lock: no Put/Delete/Collapse can commit
	// concurrently, so the head — and any view at least as new as it —
	// contains the segment.
	v := c.db.store.AcquireView()
	c.mu.RUnlock()
	lo, hi, ok := v.SegmentSpan(sid)
	if !ok {
		v.Release()
		return nil, fmt.Errorf("lazyxml: document %q segment %d vanished", name, sid)
	}
	return &DocView{v: v, alg: c.db.alg, name: name, sid: sid, lo: lo, hi: hi}, nil
}

// Name returns the document name the view is scoped to.
func (dv *DocView) Name() string { return dv.name }

// Generation returns the (store id, generation) pair the view was
// frozen at.
func (dv *DocView) Generation() PlanGen {
	return PlanGen{Store: dv.v.StoreID(), Gen: dv.v.Generation()}
}

// Release drops the snapshot reference. The holder must call it exactly
// once; the underlying store view is reclaimed when its last holder
// releases.
func (dv *DocView) Release() { dv.v.Release() }

// Text returns the document's text as of the snapshot.
func (dv *DocView) Text() ([]byte, error) {
	text, ok, err := dv.v.SegmentText(dv.sid)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("lazyxml: document %q segment %d not in view", dv.name, dv.sid)
	}
	return text, nil
}

// Query evaluates a path expression scoped to the document snapshot.
// Positions in the returned matches are global (view coordinates).
func (dv *DocView) Query(path string) ([]Match, error) {
	p, err := ParsePath(path)
	if err != nil {
		return nil, err
	}
	ms, err := evalPathOn(dv.v, dv.alg, p)
	if err != nil {
		return nil, err
	}
	return filterSpan(ms, dv.lo, dv.hi), nil
}

// Count returns the number of matches of path inside the document
// snapshot.
func (dv *DocView) Count(path string) (int, error) {
	ms, err := dv.Query(path)
	if err != nil {
		return 0, err
	}
	return len(ms), nil
}

// filterSpan keeps the matches whose descendant lies inside [lo, hi) —
// the same document-scoping rule as QueryDoc: a structural match is
// inside the document iff its descendant is.
func filterSpan(ms []Match, lo, hi int) []Match {
	out := ms[:0:0]
	for _, m := range ms {
		if m.DescStart >= lo && m.DescEnd <= hi {
			out = append(out, m)
		}
	}
	return out
}

// viewShard is one shard's contribution to a CollectionView: its store
// view, the name cut that was current with it, and the shard's join
// algorithm.
type viewShard struct {
	shard int
	v     *core.View
	alg   Algorithm
	docs  map[string]SID
}

// CollectionView is a consistent, immutable snapshot of a whole backend:
// per shard, one store view paired with the name cut taken under the
// same collection read lock. Within a shard the cut and the view are
// mutually consistent (every name resolves); across shards the views
// are acquired in shard order, so the cut is per-shard linearizable but
// not a global barrier — the documented semantics of every fanned-out
// read in this package. The holder must call Release exactly once.
type CollectionView struct {
	shards []viewShard
}

// ViewAll returns a snapshot handle over the whole collection. The cut
// and the store view are taken under one collection read lock, so every
// document in the cut resolves in the view.
func (c *Collection) ViewAll() (*CollectionView, error) {
	c.mu.RLock()
	cut := c.loadCutRLocked()
	v := c.db.store.AcquireView()
	c.mu.RUnlock()
	return &CollectionView{shards: []viewShard{{v: v, alg: c.db.alg, docs: cut.docs}}}, nil
}

// ViewStats reports the view-lifecycle counters of the collection's one
// store as shard 0.
func (c *Collection) ViewStats() []ShardViewStats {
	return []ShardViewStats{{Shard: 0, Views: c.db.store.ViewStats()}}
}

// Release drops every shard's snapshot reference. The holder must call
// it exactly once.
func (cv *CollectionView) Release() {
	for _, sh := range cv.shards {
		sh.v.Release()
	}
}

// Generations returns each shard's frozen (store id, generation) pair,
// in shard order.
func (cv *CollectionView) Generations() []PlanGen {
	out := make([]PlanGen, len(cv.shards))
	for i, sh := range cv.shards {
		out[i] = PlanGen{Store: sh.v.StoreID(), Gen: sh.v.Generation()}
	}
	return out
}

// Names lists the snapshot's document names in sorted order.
func (cv *CollectionView) Names() []string {
	var out []string
	for _, sh := range cv.shards {
		for name := range sh.docs {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of documents in the snapshot.
func (cv *CollectionView) Len() int {
	n := 0
	for _, sh := range cv.shards {
		n += len(sh.docs)
	}
	return n
}

// Query evaluates a path expression over the whole snapshot, merging
// matches in shard order (positions are shard-local, as for the live
// fan-out).
func (cv *CollectionView) Query(path string) ([]Match, error) {
	p, err := ParsePath(path)
	if err != nil {
		return nil, err
	}
	var out []Match
	for _, sh := range cv.shards {
		ms, err := evalPathOn(sh.v, sh.alg, p)
		if err != nil {
			return nil, err
		}
		out = append(out, ms...)
	}
	return out, nil
}

// Count returns the number of matches of path across the snapshot.
func (cv *CollectionView) Count(path string) (int, error) {
	ms, err := cv.Query(path)
	if err != nil {
		return 0, err
	}
	return len(ms), nil
}

// resolveDoc finds the shard and span of a named document in the
// snapshot.
func (cv *CollectionView) resolveDoc(name string) (sh viewShard, sid SID, lo, hi int, err error) {
	for _, s := range cv.shards {
		sid, ok := s.docs[name]
		if !ok {
			continue
		}
		lo, hi, ok := s.v.SegmentSpan(sid)
		if !ok {
			return viewShard{}, 0, 0, 0, fmt.Errorf("lazyxml: document %q segment %d not in view", name, sid)
		}
		return s, sid, lo, hi, nil
	}
	return viewShard{}, 0, 0, 0, fmt.Errorf("lazyxml: unknown document %q", name)
}

// QueryDoc evaluates a path expression scoped to one document of the
// snapshot.
func (cv *CollectionView) QueryDoc(name, path string) ([]Match, error) {
	sh, _, lo, hi, err := cv.resolveDoc(name)
	if err != nil {
		return nil, err
	}
	p, err := ParsePath(path)
	if err != nil {
		return nil, err
	}
	ms, err := evalPathOn(sh.v, sh.alg, p)
	if err != nil {
		return nil, err
	}
	return filterSpan(ms, lo, hi), nil
}

// CountDoc returns the number of matches of path inside one document of
// the snapshot.
func (cv *CollectionView) CountDoc(name, path string) (int, error) {
	ms, err := cv.QueryDoc(name, path)
	if err != nil {
		return 0, err
	}
	return len(ms), nil
}

// Text returns one document's text as of the snapshot.
func (cv *CollectionView) Text(name string) ([]byte, error) {
	sh, sid, _, _, err := cv.resolveDoc(name)
	if err != nil {
		return nil, err
	}
	text, ok, err := sh.v.SegmentText(sid)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("lazyxml: document %q segment %d not in view", name, sid)
	}
	return text, nil
}

// View routes the document-scoped snapshot acquisition to the
// document's shard.
func (sc *ShardedCollection) View(name string) (*DocView, error) {
	sh, err := sc.shardFor(name)
	if err != nil {
		return nil, err
	}
	return sh.View(name)
}

// ViewAll composes one snapshot handle from every shard's view, in
// shard order. Each shard's (cut, view) pair is taken under that
// shard's read lock; the composition is not a cross-shard barrier —
// exactly the consistency the live fanned-out Query has, made explicit
// and pinned for the lifetime of the handle.
func (sc *ShardedCollection) ViewAll() (*CollectionView, error) {
	sc.mu.RLock()
	shards := make([]Backend, len(sc.shards))
	copy(shards, sc.shards)
	sc.mu.RUnlock()
	out := &CollectionView{shards: make([]viewShard, 0, len(shards))}
	for i, sh := range shards {
		cv, err := sh.ViewAll()
		if err != nil {
			out.Release()
			return nil, err
		}
		for _, vs := range cv.shards {
			vs.shard = i
			out.shards = append(out.shards, vs)
		}
	}
	return out, nil
}

// ViewStats gathers every shard's view-lifecycle counters in parallel.
func (sc *ShardedCollection) ViewStats() []ShardViewStats {
	out := make([]ShardViewStats, len(sc.shards))
	sc.fanOut(func(i int, sh Backend) error {
		st := sh.ViewStats()[0]
		st.Shard = i
		out[i] = st
		return nil
	})
	return out
}
