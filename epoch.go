package lazyxml

// Replication epochs fence a failed-over primary. Every durable
// collection carries a monotonic epoch, persisted in epoch.meta at the
// journal root. Promoting a follower bumps its epoch; from then on the
// handshake (internal/repl HELLO) carries the epoch both ways, a
// follower refuses a primary whose epoch is behind its own, and a
// primary refuses to feed a subscriber that has seen a newer epoch —
// so a deposed primary that comes back can no longer spread its
// records, whichever side of the stream it lands on.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/faultline"
)

const (
	epochMetaName  = "epoch.meta"
	epochMetaMagic = "LXEP1"
)

// readEpoch loads the collection's replication epoch; absent means zero
// (a collection from before failover existed, or one never promoted).
func readEpoch(fs faultline.FS, dir string) (int64, error) {
	raw, err := fs.ReadFile(filepath.Join(dir, epochMetaName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var e int64
	if _, err := fmt.Sscanf(string(raw), epochMetaMagic+" %d", &e); err != nil || e < 0 {
		return 0, fmt.Errorf("lazyxml: corrupt %s: %q", epochMetaName, strings.TrimSpace(string(raw)))
	}
	return e, nil
}

// writeEpoch persists the epoch atomically.
func writeEpoch(fs faultline.FS, dir string, e int64) error {
	path := filepath.Join(dir, epochMetaName)
	tmp := path + ".tmp"
	if err := fs.WriteFile(tmp, []byte(fmt.Sprintf("%s %d\n", epochMetaMagic, e)), 0o644); err != nil {
		return err
	}
	return fs.Rename(tmp, path)
}

// Epoch returns the collection's current replication epoch.
func (sc *ShardedCollection) Epoch() int64 {
	sc.mu.RLock()
	defer sc.mu.RUnlock()
	return sc.epoch
}

// AdvanceEpoch raises the persisted epoch to e (learned from a primary
// running a newer regime). Lower or equal values are a no-op: epochs
// only move forward.
func (sc *ShardedCollection) AdvanceEpoch(e int64) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if e <= sc.epoch {
		return nil
	}
	if !sc.IsDurable() {
		sc.epoch = e
		return nil
	}
	if err := writeEpoch(sc.fs, sc.dir, e); err != nil {
		return err
	}
	sc.epoch = e
	return nil
}

// Promote bumps the epoch by one — persisted before it takes effect —
// and returns the new value. The caller (the daemon's -promote
// endpoint) is responsible for stopping the follower loop first; from
// the new epoch on, the old primary's stream is refused everywhere this
// collection's epoch has been seen.
func (sc *ShardedCollection) Promote() (int64, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	next := sc.epoch + 1
	if sc.IsDurable() {
		if err := writeEpoch(sc.fs, sc.dir, next); err != nil {
			return 0, err
		}
	}
	sc.epoch = next
	return next, nil
}
