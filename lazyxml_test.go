package lazyxml

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xmltree"
)

func mustAppend(t *testing.T, db *DB, frag string) SID {
	t.Helper()
	sid, err := db.Append([]byte(frag))
	if err != nil {
		t.Fatalf("Append(%q): %v", frag, err)
	}
	return sid
}

func TestOpenInsertQuery(t *testing.T) {
	db := Open(LD)
	mustAppend(t, db, "<library><shelf></shelf></library>")
	if _, err := db.Insert(16, []byte("<book><title/></book>")); err != nil {
		t.Fatal(err)
	}
	n, err := db.Count("shelf//title")
	if err != nil || n != 1 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	n, err = db.Count("library//book")
	if err != nil || n != 1 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	if db.Segments() != 2 {
		t.Fatalf("Segments = %d", db.Segments())
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleStepPath(t *testing.T) {
	db := Open(LD)
	mustAppend(t, db, "<a><b/><b/><c/></a>")
	ms, err := db.Query("b")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("b = %d matches", len(ms))
	}
	for _, m := range ms {
		if m.DescEnd <= m.DescStart {
			t.Fatalf("bad span %+v", m)
		}
	}
}

func TestMultiStepPath(t *testing.T) {
	db := Open(LD)
	mustAppend(t, db, "<a><b><c><d/></c></b><c><d/></c></a>")
	// a//c/d : both c's contain a d child.
	ms, err := db.Query("a//c/d")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("a//c/d = %d matches, want 2", len(ms))
	}
	// b/c//d : only the first c is a child of b.
	ms, err = db.Query("b/c//d")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("b/c//d = %d matches, want 1", len(ms))
	}
	for _, m := range ms {
		if m.AncEnd <= m.AncStart || m.DescEnd <= m.DescStart {
			t.Fatalf("unresolved globals: %+v", m)
		}
	}
}

func TestParsePath(t *testing.T) {
	cases := []struct {
		in   string
		want string
		err  bool
	}{
		{"a//b", "a//b", false},
		{"a/b/c", "a/b/c", false},
		{"//a//b", "a//b", false},
		{"/a", "a", false},
		{"a", "a", false},
		{" a//b ", "a//b", false},
		{"", "", true},
		{"//", "", true},
		{"a//", "", true},
		{"a///b", "", true},
		{"a b//c", "", true},
	}
	for _, c := range cases {
		p, err := ParsePath(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParsePath(%q) succeeded: %v", c.in, p)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePath(%q): %v", c.in, err)
			continue
		}
		if p.String() != c.want {
			t.Errorf("ParsePath(%q) = %q, want %q", c.in, p.String(), c.want)
		}
	}
}

func TestQueryAlgorithmsAgree(t *testing.T) {
	build := func(alg Algorithm) *DB {
		db := Open(LD, WithAlgorithm(alg))
		mustAppend(t, db, "<a><p><q/></p></a>")
		if _, err := db.Insert(6, []byte("<q><r/></q>")); err != nil {
			t.Fatal(err)
		}
		return db
	}
	lazy := build(LazyJoin)
	std := build(STD)
	for _, path := range []string{"a//q", "p//q", "a//q//r", "p/q"} {
		n1, err1 := lazy.Count(path)
		n2, err2 := std.Count(path)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if n1 != n2 {
			t.Fatalf("%s: lazy %d != std %d", path, n1, n2)
		}
	}
}

func TestRemoveElementAt(t *testing.T) {
	db := Open(LD)
	mustAppend(t, db, "<a><b/><c/></a>")
	if err := db.RemoveElementAt(3); err != nil { // <b/>
		t.Fatal(err)
	}
	text, _ := db.Text()
	if string(text) != "<a><c/></a>" {
		t.Fatalf("text = %s", text)
	}
	if err := db.RemoveElementAt(99); err == nil {
		t.Fatal("removal at non-element offset succeeded")
	}
	if err := db.RemoveElementAt(1); err != ErrNotAnElement {
		t.Fatalf("err = %v, want ErrNotAnElement", err)
	}
}

func TestSaveAndOpenFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.xml")
	db := Open(LD)
	mustAppend(t, db, "<a><b/></a>")
	mustAppend(t, db, "<c/>")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// A super document with two top-level segments is not one XML
	// document; OpenFile requires a single root, so save a rebuilt
	// single-rooted database instead.
	db2 := Open(LD)
	mustAppend(t, db2, "<a><b/><c/></a>")
	if err := db2.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := OpenFile(path, LS)
	if err != nil {
		t.Fatal(err)
	}
	if got.Segments() != 1 {
		t.Fatalf("Segments = %d", got.Segments())
	}
	n, err := got.Count("a//b")
	if err != nil || n != 1 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	raw, _ := os.ReadFile(path)
	text, _ := got.Text()
	if !bytes.Equal(raw, text) {
		t.Fatal("round trip changed the document")
	}
	if _, err := OpenFile(filepath.Join(dir, "missing.xml"), LD); err == nil {
		t.Fatal("OpenFile(missing) succeeded")
	}
}

func TestRebuildFacade(t *testing.T) {
	db := Open(LD)
	mustAppend(t, db, "<a><x></x></a>")
	if _, err := db.Insert(6, []byte("<b/>")); err != nil {
		t.Fatal(err)
	}
	if db.Segments() != 2 {
		t.Fatal("expected 2 segments")
	}
	if err := db.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if db.Segments() != 1 {
		t.Fatalf("Segments after rebuild = %d", db.Segments())
	}
	if n, _ := db.Count("a//b"); n != 1 {
		t.Fatal("query broken after rebuild")
	}
}

func TestWithoutTextFacade(t *testing.T) {
	db := Open(LD, WithoutText())
	mustAppend(t, db, "<a><b/></a>")
	if n, _ := db.Count("a//b"); n != 1 {
		t.Fatal("query broken without text")
	}
	if _, err := db.Text(); err == nil {
		t.Fatal("Text succeeded")
	}
	if err := db.RemoveElementAt(0); err == nil {
		t.Fatal("RemoveElementAt succeeded")
	}
}

func TestStatsFacade(t *testing.T) {
	db := Open(LS)
	mustAppend(t, db, "<a><b/></a>")
	st := db.Stats()
	if st.Segments != 1 || st.Elements != 2 || st.Mode != LS {
		t.Fatalf("stats = %+v", st)
	}
	if db.Mode() != LS {
		t.Fatal("Mode() wrong")
	}
	if db.Len() != 11 {
		t.Fatalf("Len = %d", db.Len())
	}
}

// TestQuickPathAgainstBruteForce verifies multi-step path evaluation on
// random documents against a straight tree walk.
func TestQuickPathAgainstBruteForce(t *testing.T) {
	tags := []string{"a", "b", "c"}
	genDoc := func(r *rand.Rand) string {
		var sb strings.Builder
		var emit func(depth int)
		emit = func(depth int) {
			tag := tags[r.Intn(len(tags))]
			if depth > 4 || r.Intn(3) == 0 {
				sb.WriteString("<" + tag + "/>")
				return
			}
			sb.WriteString("<" + tag + ">")
			for i, n := 0, r.Intn(3); i < n; i++ {
				emit(depth + 1)
			}
			sb.WriteString("</" + tag + ">")
		}
		sb.WriteString("<root>")
		for i := 0; i < 3; i++ {
			emit(1)
		}
		sb.WriteString("</root>")
		return sb.String()
	}
	paths := []string{"a//b", "a/b", "a//b//c", "a//b/c", "a/b//c", "root//a//c"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		text := genDoc(r)
		db := Open(LD)
		if _, err := db.Append([]byte(text)); err != nil {
			return false
		}
		doc, err := xmltree.Parse([]byte(text))
		if err != nil {
			return false
		}
		for _, pexpr := range paths {
			p, err := ParsePath(pexpr)
			if err != nil {
				return false
			}
			want := brutePath(doc, p)
			got, err := db.Query(pexpr)
			if err != nil {
				return false
			}
			gotSet := map[[2]int]bool{}
			for _, m := range got {
				gotSet[[2]int{m.AncStart, m.DescStart}] = true
			}
			if len(gotSet) != len(want) {
				t.Logf("seed %d path %s: got %v want %v (doc %s)", seed, pexpr, gotSet, want, text)
				return false
			}
			for k := range want {
				if !gotSet[k] {
					t.Logf("seed %d path %s: missing %v", seed, pexpr, k)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// brutePath computes the expected (ancStart, descStart) pairs of a path:
// the pairs are (second-to-last step element, last step element).
func brutePath(doc *xmltree.Document, p Path) map[[2]int]bool {
	// frontier: elements matching the path up to step i.
	frontier := map[*xmltree.Element]bool{}
	doc.Walk(func(e *xmltree.Element) bool {
		if e.Tag == p.First {
			frontier[e] = true
		}
		return true
	})
	type pair struct{ a, d *xmltree.Element }
	var lastPairs []pair
	for _, step := range p.Steps {
		lastPairs = nil
		next := map[*xmltree.Element]bool{}
		doc.Walk(func(d *xmltree.Element) bool {
			if d.Tag != step.Tag {
				return true
			}
			for a := range frontier {
				ok := false
				if step.Axis == Descendant {
					ok = a.Contains(d)
				} else {
					ok = d.Parent == a
				}
				if ok {
					next[d] = true
					lastPairs = append(lastPairs, pair{a, d})
				}
			}
			return true
		})
		frontier = next
	}
	out := map[[2]int]bool{}
	for _, pr := range lastPairs {
		out[[2]int{pr.a.Start, pr.d.Start}] = true
	}
	return out
}
