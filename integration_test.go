package lazyxml

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/xmlgen"
)

// Cross-feature integration: the combinations users will actually run.

func TestIntegrationCollectionSnapshot(t *testing.T) {
	c := NewCollection(LD, WithValues())
	if err := c.Put("people", []byte("<people><person><name>Ann</name></person></people>")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("items", []byte("<items><item/></items>")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.DB().Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The restored DB holds both documents' content (the Collection's
	// name map is a session-level convenience, not persisted state).
	if n, _ := restored.CountPattern("person[name='Ann']"); n != 1 {
		t.Fatal("value predicate broken after collection snapshot")
	}
	if n, _ := restored.Count("items/item"); n != 1 {
		t.Fatal("second document lost")
	}
}

func TestIntegrationJournalWithPatterns(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, LD, []Option{WithValues(), WithAttributes()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append([]byte(`<people></people>`)); err != nil {
		t.Fatal(err)
	}
	const open = len("<people>")
	for i, name := range []string{"Ann", "Bob", "Ann"} {
		frag := []byte(`<person id="p` + string(rune('0'+i)) + `"><name>` + name + `</name></person>`)
		if _, err := j.Insert(open, frag); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, err := OpenJournal(dir, LD, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if n, _ := j2.CountPattern("person[name='Ann']"); n != 2 {
		t.Fatal("value predicate broken after journal compact+reopen")
	}
	if n, _ := j2.CountPattern("person[@id='p1']"); n != 1 {
		t.Fatal("attribute predicate broken after journal compact+reopen")
	}
}

func TestIntegrationParallelFacade(t *testing.T) {
	db := Open(LD)
	text := xmlgen.XMark(xmlgen.XMarkConfig{Seed: 3, Persons: 50, Items: 10})
	if _, err := db.Insert(0, text); err != nil {
		t.Fatal(err)
	}
	// Split the store into many segments for real partitioning.
	ms, _ := db.Query("person")
	for i := 0; i < 10 && i < len(ms); i++ {
		if _, err := db.Collapse(SID(1)); err != nil {
			break
		}
	}
	seq, err := db.QueryPair("person", "phone", Descendant, LazyJoin)
	if err != nil {
		t.Fatal(err)
	}
	par, err := db.QueryPairParallel("person", "phone", Descendant, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("parallel %d vs sequential %d", len(par), len(seq))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("result %d differs", i)
		}
	}
}

func TestIntegrationRebuildMultiDocument(t *testing.T) {
	// Several top-level documents + rebuild: the soak-test regression.
	db := Open(LD, WithValues())
	mustAppend(t, db, "<a><x>v</x></a>")
	mustAppend(t, db, "<b/>")
	mustAppend(t, db, "<c><y>v</y></c>")
	if err := db.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if db.Segments() != 3 {
		t.Fatalf("segments after multi-doc rebuild = %d, want 3", db.Segments())
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.CountPattern("a[x='v']"); n != 1 {
		t.Fatal("values broken after multi-doc rebuild")
	}
}

func TestIntegrationSaveRestoreChain(t *testing.T) {
	dir := t.TempDir()
	db := Open(LS, WithAttributes())
	mustAppend(t, db, `<site><person id="p1"><phone/></person></site>`)
	snap := filepath.Join(dir, "a.snap")
	if err := db.SnapshotFile(snap); err != nil {
		t.Fatal(err)
	}
	r1, err := RestoreFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Insert(6, []byte(`<person id="p2"><phone/></person>`)); err != nil {
		t.Fatal(err)
	}
	snap2 := filepath.Join(dir, "b.snap")
	if err := r1.SnapshotFile(snap2); err != nil {
		t.Fatal(err)
	}
	r2, err := RestoreFile(snap2)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := r2.Count("person//phone"); n != 2 {
		t.Fatal("snapshot chain lost data")
	}
	if n, _ := r2.Count("person/@id"); n != 2 {
		t.Fatal("attribute option lost across snapshot chain")
	}
	if err := r2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSnapshotRoundTrip(b *testing.B) {
	db := Open(LD)
	text := xmlgen.XMark(xmlgen.XMarkConfig{Seed: 5, Persons: 1000, Items: 200})
	if _, err := db.Insert(0, text); err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(buf.Len())/1024, "snapshot-KB")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := db.Snapshot(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := Restore(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}
