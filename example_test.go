package lazyxml_test

import (
	"bytes"
	"fmt"
	"log"

	lazyxml "repro"
)

// The basic lifecycle: open, edit by offset, query by path.
func Example() {
	db := lazyxml.Open(lazyxml.LD)
	if _, err := db.Append([]byte("<library><shelf></shelf></library>")); err != nil {
		log.Fatal(err)
	}
	// Offset 16 is just after "<library><shelf>".
	if _, err := db.Insert(16, []byte("<book><title>Lazy</title></book>")); err != nil {
		log.Fatal(err)
	}
	n, _ := db.Count("shelf//title")
	fmt.Println(n)
	// Output: 1
}

// Path queries pair the last two steps; QueryTwig returns whole tuples.
func ExampleDB_QueryTwig() {
	db := lazyxml.Open(lazyxml.LD)
	db.Append([]byte("<a><b><c/></b></a>"))
	tuples, _ := db.QueryTwig("a//b/c")
	for _, tu := range tuples {
		for i, nd := range tu {
			if i > 0 {
				fmt.Print(" contains ")
			}
			fmt.Printf("[%d,%d)", nd.Start, nd.End)
		}
		fmt.Println()
	}
	// Output: [0,18) contains [3,14) contains [6,10)
}

// Twig patterns add existential and value predicates.
func ExampleDB_QueryPattern() {
	db := lazyxml.Open(lazyxml.LD, lazyxml.WithValues(), lazyxml.WithAttributes())
	db.Append([]byte(`<people>` +
		`<person id="p1"><name>Ann</name><phone>1</phone></person>` +
		`<person id="p2"><name>Bob</name><phone>2</phone></person>` +
		`</people>`))
	n, _ := db.CountPattern("person[name='Ann']/phone")
	fmt.Println(n)
	n, _ = db.CountPattern("person[@id='p2']/phone")
	fmt.Println(n)
	// Output:
	// 1
	// 1
}

// Snapshots carry the whole store — update log included — across
// restarts.
func ExampleDB_Snapshot() {
	db := lazyxml.Open(lazyxml.LS)
	db.Append([]byte("<a><b/></a>"))

	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		log.Fatal(err)
	}
	restored, err := lazyxml.Restore(&buf)
	if err != nil {
		log.Fatal(err)
	}
	n, _ := restored.Count("a/b")
	fmt.Println(n, restored.Segments())
	// Output: 1 1
}

// Collections scope queries to named documents.
func ExampleCollection() {
	c := lazyxml.NewCollection(lazyxml.LD)
	c.Put("x", []byte("<doc><item/></doc>"))
	c.Put("y", []byte("<doc><item/><item/></doc>"))
	all, _ := c.Query("doc/item")
	inY, _ := c.CountDoc("y", "doc/item")
	fmt.Println(len(all), inY)
	// Output: 3 2
}
