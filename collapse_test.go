package lazyxml

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCollapseMergesSubtree(t *testing.T) {
	db := Open(LD)
	mustAppend(t, db, "<a><x></x></a>")
	if _, err := db.Insert(6, []byte("<b><c></c></b>")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert(12, []byte("<d/>")); err != nil { // inside <c>
		t.Fatal(err)
	}
	if db.Segments() != 3 {
		t.Fatalf("segments = %d", db.Segments())
	}
	before, err := db.Query("a//d")
	if err != nil || len(before) != 1 {
		t.Fatalf("a//d = %v, %v", before, err)
	}
	// Collapse the <b> segment (sid 2): it and its nested <d/> segment
	// become one.
	ms, _ := db.Query("b")
	sid := ms[0].Desc.SID
	newSID, err := db.Collapse(sid)
	if err != nil {
		t.Fatal(err)
	}
	if newSID == sid {
		t.Fatal("collapse returned the old sid")
	}
	if db.Segments() != 2 {
		t.Fatalf("segments after collapse = %d", db.Segments())
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	after, err := db.Query("a//d")
	if err != nil || len(after) != 1 {
		t.Fatalf("a//d after collapse = %v, %v", after, err)
	}
	if before[0].DescStart != after[0].DescStart {
		t.Fatal("collapse moved global positions")
	}
}

func TestCollapseErrors(t *testing.T) {
	db := Open(LD)
	mustAppend(t, db, "<a/>")
	if _, err := db.Collapse(0); err == nil {
		t.Fatal("collapsing the dummy root succeeded")
	}
	if _, err := db.Collapse(99); err == nil {
		t.Fatal("collapsing an unknown segment succeeded")
	}
	noText := Open(LD, WithoutText())
	if _, err := noText.Append([]byte("<a/>")); err != nil {
		t.Fatal(err)
	}
	if _, err := noText.Collapse(1); err == nil {
		t.Fatal("collapse without text succeeded")
	}
}

// TestQuickCollapsePreservesQueries collapses random segments of random
// stores and verifies queries and consistency are unaffected.
func TestQuickCollapsePreservesQueries(t *testing.T) {
	tags := []string{"a", "b", "c"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := Open(LD)
		for i := 0; i < 10; i++ {
			frag := randomSnapshotFragment(r, tags)
			gp := 0
			if db.Len() > 0 {
				ms, err := db.Query(tags[r.Intn(len(tags))])
				if err != nil {
					return false
				}
				if len(ms) > 0 {
					gp = ms[r.Intn(len(ms))].DescEnd
				}
			}
			if _, err := db.Insert(gp, []byte(frag)); err != nil {
				return false
			}
		}
		counts := map[string]int{}
		for _, a := range tags {
			for _, d := range tags {
				counts[a+"//"+d], _ = db.Count(a + "//" + d)
			}
		}
		// Collapse a few random segments (some ids may already be gone —
		// collapsed away as descendants — which must error cleanly).
		for i := 0; i < 4; i++ {
			sid := SID(r.Intn(db.Stats().Inserts) + 1)
			if _, err := db.Collapse(sid); err != nil {
				continue
			}
			if err := db.CheckConsistency(); err != nil {
				t.Log(err)
				return false
			}
		}
		for _, a := range tags {
			for _, d := range tags {
				n, _ := db.Count(a + "//" + d)
				if n != counts[a+"//"+d] {
					t.Logf("seed %d: %s//%s changed %d -> %d", seed, a, d, counts[a+"//"+d], n)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
