package lazyxml

// Cost-based query planning and generation-keyed result caching: the
// lazyxml-side wiring of internal/plan. Every DB carries a statistics
// collector; a QueryPlanner (shared result cache + pick counters) is
// attached per process with EnablePlanner and survives shard re-seeds.
//
// The staleness argument for the cache, in one paragraph: a result is
// cached under the (store id, generation) pair of the MVCC snapshot
// view the query executed against, so key and result correspond exactly
// by construction — the view is immutable, and its generation IS the
// state the matches were computed from. A later reader only receives
// that entry when its own acquired view reports the same pair, and
// AcquireView never serves a view older than the head generation
// observed at entry, so a reader that has seen a write can never hit a
// pre-write entry. Generations are monotonic; the moment a write's bump
// is visible, the old key is unreachable forever. No stale result can
// ever be served, with no invalidation hooks anywhere.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/join"
	"repro/internal/plan"
	"repro/internal/twig"
)

// PlanAlgo selects a planned-query strategy; PlanAuto lets the cost
// model decide.
type PlanAlgo = plan.Algo

// PlanInfo is one explainable plan (per shard, for fanned-out queries).
type PlanInfo = plan.Plan

// PlanGen is a (store id, generation) pair — one shard's cache epoch.
type PlanGen = plan.Gen

// PlanAuto requests cost-based selection (the zero PlanOpt).
const PlanAuto = plan.Auto

// ParsePlanAlgo parses an algorithm override name ("lazy", "parallel",
// "std", "skip", "sta", "xb", "twig"; ""/"auto"/"planned" = cost-based).
func ParsePlanAlgo(s string) (PlanAlgo, error) { return plan.ParseAlgo(s) }

// PlanOpt controls one planned query.
type PlanOpt struct {
	// Force pins the algorithm (the ?algo= A/B override); PlanAuto
	// lets the cost model pick.
	Force PlanAlgo
	// NoCache bypasses the result cache for this query (both lookup and
	// fill).
	NoCache bool
}

// QueryPlanner is the process-wide planning state: the generation-keyed
// result cache and the per-algorithm pick counters. One QueryPlanner is
// shared by every shard of a backend (keys embed the per-shard store id
// and generation, so shards never collide), attached with
// Backend.EnablePlanner.
type QueryPlanner struct {
	cache *plan.Cache
	picks *plan.Picks
}

// NewQueryPlanner returns a planner whose result cache holds at most
// cacheBytes of match data (<= 0 disables caching; planning and explain
// still work).
func NewQueryPlanner(cacheBytes int64) *QueryPlanner {
	return &QueryPlanner{cache: plan.NewCache(cacheBytes), picks: plan.NewPicks()}
}

// PlannerStats is the /stats and /metrics readout of a QueryPlanner.
type PlannerStats struct {
	Cache plan.CacheStats  `json:"cache"`
	Picks map[string]int64 `json:"picks"`
}

// Stats snapshots the cache counters and algorithm picks.
func (qp *QueryPlanner) Stats() PlannerStats {
	if qp == nil {
		return PlannerStats{}
	}
	return PlannerStats{Cache: qp.cache.Stats(), Picks: qp.picks.Snapshot()}
}

// matchBytes is the cache accounting size of one Match (two ElemRefs
// plus four global positions, plus slice overhead amortized).
const matchBytes = 96

// planQuery parses a path into both the executor's and the planner's
// representation.
func planQuery(path string) (Path, plan.Query, error) {
	p, err := ParsePath(path)
	if err != nil {
		return Path{}, plan.Query{}, err
	}
	steps := make([]plan.Step, 0, 1+len(p.Steps))
	steps = append(steps, plan.Step{Tag: p.First})
	for _, st := range p.Steps {
		steps = append(steps, plan.Step{Tag: st.Tag, Desc: st.Axis == Descendant})
	}
	return p, plan.Query{Path: p.String(), Steps: steps}, nil
}

// coreAlgorithm maps a planned binary-join choice onto the engine's
// Algorithm enum.
func coreAlgorithm(a string) (Algorithm, error) {
	switch a {
	case plan.Lazy.String():
		return core.LazyJoin, nil
	case plan.STD.String():
		return core.STD, nil
	case plan.Skip.String():
		return core.SkipSTD, nil
	case plan.STA.String():
		return core.STA, nil
	case plan.XBTree.String():
		return core.XB, nil
	default:
		return 0, fmt.Errorf("lazyxml: plan chose unexecutable algorithm %q", a)
	}
}

// PlanGeneration reads the database's current cache epoch without taking
// the store lock.
func (db *DB) PlanGeneration() PlanGen { return db.planc.Gen() }

// TagCardinality returns the number of indexed elements with the given
// tag, from the tag-list statistics (no scan).
func (db *DB) TagCardinality(tag string) int { return db.store.TagCardinality(tag) }

// QueryPlanned evaluates a path with cost-based (or forced) algorithm
// selection and returns the matches together with the explainable plan.
// The DB layer never caches — the result cache lives at the collection
// layer, where document scoping and the QueryPlanner are known.
func (db *DB) QueryPlanned(path string, opt PlanOpt) ([]Match, PlanInfo, error) {
	v := db.store.AcquireView()
	defer v.Release()
	return db.queryPlannedOn(v, path, opt)
}

// queryPlannedOn plans the path from the collector's statistics and
// executes it against the given read engine — in practice always an
// MVCC snapshot view, so the collection layer can key its cache on the
// exact state the query ran over. Statistics may be one generation
// fresher than the view (the collector reads the head); they only steer
// the cost model, never the results.
func (db *DB) queryPlannedOn(eng queryEngine, path string, opt PlanOpt) ([]Match, PlanInfo, error) {
	p, pq, err := planQuery(path)
	if err != nil {
		return nil, PlanInfo{}, err
	}
	v := db.planc.View(pq.Tags())
	pl := plan.Forced(pq, opt.Force, v)
	ms, err := execPlannedOn(eng, p, pl, v.Workers)
	if err != nil {
		return nil, PlanInfo{}, err
	}
	return ms, pl, nil
}

// execPlannedOn runs the parsed path with the plan's chosen strategy
// against any read engine.
func execPlannedOn(eng queryEngine, p Path, pl PlanInfo, workers int) ([]Match, error) {
	if len(p.Steps) == 0 {
		// Scan: one tag list, no join — same as the unplanned path.
		return evalPathOn(eng, LazyJoin, p)
	}
	if pl.Algo == plan.PathStack.String() {
		tuples, err := queryTwigOn(eng, p)
		if err != nil {
			return nil, err
		}
		return tuplesToMatches(tuples), nil
	}
	var ms []Match
	var err error
	if pl.Algo == plan.LazyParallel.String() {
		ms, err = eng.QueryParallel(p.First, p.Steps[0].Tag, p.Steps[0].Axis, workers)
	} else {
		alg, aerr := coreAlgorithm(pl.Algo)
		if aerr != nil {
			return nil, aerr
		}
		ms, err = eng.Query(p.First, p.Steps[0].Tag, p.Steps[0].Axis, alg)
	}
	if err != nil {
		return nil, err
	}
	return continuePipelineOn(eng, ms, p.Steps[1:]), nil
}

// EnablePlanner attaches the planner (result cache + pick counters) and
// wires the collection's document count into the statistics collector as
// the fragmentation denominator.
func (c *Collection) EnablePlanner(qp *QueryPlanner) {
	c.mu.Lock()
	c.qp = qp
	c.mu.Unlock()
	c.db.planc.SetDocs(c.Len)
}

// plannerRef reads the attached planner (nil when planning runs without
// a cache).
func (c *Collection) plannerRef() *QueryPlanner {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.qp
}

// TagCardinality returns the number of indexed elements with the tag.
func (c *Collection) TagCardinality(tag string) int { return c.db.TagCardinality(tag) }

// QueryPlanned evaluates a path over the whole collection with
// cost-based (or forced) algorithm selection, serving repeat queries from
// the generation-keyed cache when a planner is attached.
func (c *Collection) QueryPlanned(path string, opt PlanOpt) ([]Match, []PlanInfo, error) {
	ms, pl, err := c.queryPlanned("", path, opt)
	if err != nil {
		return nil, nil, err
	}
	return ms, []PlanInfo{pl}, nil
}

// QueryDocPlanned is QueryPlanned scoped to one named document.
func (c *Collection) QueryDocPlanned(name, path string, opt PlanOpt) ([]Match, []PlanInfo, error) {
	ms, pl, err := c.queryPlanned(name, path, opt)
	if err != nil {
		return nil, nil, err
	}
	return ms, []PlanInfo{pl}, nil
}

// queryPlanned is the cached planned-query path. The execution snapshot
// is acquired FIRST and the cache key is its exact (store id,
// generation) pair, so key and result can never diverge — the ordering
// the staleness argument at the top of this file depends on. The
// collection lock is never held across planning or execution: the
// statistics collector's document counter re-enters c.mu.
func (c *Collection) queryPlanned(doc, path string, opt PlanOpt) ([]Match, PlanInfo, error) {
	qp := c.plannerRef()
	var eng queryEngine
	var gen PlanGen
	lo, hi := 0, 0
	if doc == "" {
		v := c.db.store.AcquireView()
		defer v.Release()
		eng = v
		gen = PlanGen{Store: v.StoreID(), Gen: v.Generation()}
	} else {
		dv, err := c.View(doc)
		if err != nil {
			return nil, PlanInfo{}, err
		}
		defer dv.Release()
		eng, gen, lo, hi = dv.v, dv.Generation(), dv.lo, dv.hi
	}
	var key plan.Key
	useCache := qp != nil && !opt.NoCache
	if useCache {
		key = plan.Key{Gen: gen, Doc: doc, Path: path, Algo: opt.Force}
		if v, pl, ok := qp.cache.Get(key); ok {
			return v.([]Match), pl, nil
		}
	}
	ms, pl, err := c.db.queryPlannedOn(eng, path, opt)
	if err != nil {
		return nil, PlanInfo{}, err
	}
	if doc != "" {
		// Same scoping rule as QueryDoc: a match is inside the document
		// iff its descendant is. The span came from the same view the
		// query ran on.
		ms = filterSpan(ms, lo, hi)
	}
	if qp != nil && !pl.Forced {
		qp.picks.Count(pl.Algo)
	}
	if useCache {
		qp.cache.Put(key, ms, int64(len(ms)+1)*matchBytes, pl)
	}
	return ms, pl, nil
}

// EnablePlanner attaches one shared planner to every shard: cache keys
// embed each shard's store identity, so per-shard partial results never
// collide in the shared cache. A shard re-seeded later is re-attached by
// InstallReseed.
func (sc *ShardedCollection) EnablePlanner(qp *QueryPlanner) {
	sc.mu.Lock()
	sc.planner = qp
	shards := make([]Backend, len(sc.shards))
	copy(shards, sc.shards)
	sc.mu.Unlock()
	for _, sh := range shards {
		sh.EnablePlanner(qp)
	}
}

// TagCardinality sums the tag's indexed-element count across shards.
func (sc *ShardedCollection) TagCardinality(tag string) int {
	per := make([]int, len(sc.shards))
	sc.fanOut(func(i int, sh Backend) error {
		per[i] = sh.TagCardinality(tag)
		return nil
	})
	total := 0
	for _, n := range per {
		total += n
	}
	return total
}

// QueryPlanned fans the planned query out across shards: each shard
// plans against its own statistics and caches its own partial result
// under its own generation, so a write to one shard never invalidates
// another shard's cache entry. Matches merge in shard order; the
// returned plans carry one entry per shard.
func (sc *ShardedCollection) QueryPlanned(path string, opt PlanOpt) ([]Match, []PlanInfo, error) {
	perM := make([][]Match, len(sc.shards))
	perP := make([][]PlanInfo, len(sc.shards))
	err := sc.fanOut(func(i int, sh Backend) error {
		ms, pls, err := sh.QueryPlanned(path, opt)
		if err != nil {
			return err
		}
		for k := range pls {
			pls[k].Shard = i
		}
		perM[i], perP[i] = ms, pls
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	var total int
	for _, ms := range perM {
		total += len(ms)
	}
	out := make([]Match, 0, total)
	plans := make([]PlanInfo, 0, len(sc.shards))
	for i := range perM {
		out = append(out, perM[i]...)
		plans = append(plans, perP[i]...)
	}
	return out, plans, nil
}

// QueryDocPlanned routes the planned document-scoped query to the
// document's shard.
func (sc *ShardedCollection) QueryDocPlanned(name, path string, opt PlanOpt) ([]Match, []PlanInfo, error) {
	sc.mu.RLock()
	si, ok := sc.route[name]
	var sh Backend
	if ok {
		sh = sc.shards[si]
	}
	sc.mu.RUnlock()
	if !ok {
		return nil, nil, fmt.Errorf("lazyxml: unknown document %q", name)
	}
	ms, pls, err := sh.QueryDocPlanned(name, path, opt)
	if err != nil {
		return nil, nil, err
	}
	for k := range pls {
		pls[k].Shard = si
	}
	return ms, pls, nil
}

// tuplesToMatches projects full twig tuples onto the binary-pipeline
// result shape: the (last-step, previous-step) element pairs, deduped —
// several tuples may share their last two bindings through different
// upper chains.
func tuplesToMatches(tuples []twig.Tuple) []Match {
	type pairKey struct{ a, d join.ElemRef }
	seen := map[pairKey]bool{}
	out := make([]Match, 0, len(tuples))
	for _, t := range tuples {
		if len(t) < 2 {
			continue
		}
		a, d := t[len(t)-2], t[len(t)-1]
		k := pairKey{a: a.Ref, d: d.Ref}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, Match{
			Anc: a.Ref, Desc: d.Ref,
			AncStart: a.Start, AncEnd: a.End,
			DescStart: d.Start, DescEnd: d.End,
		})
	}
	return out
}
