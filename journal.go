package lazyxml

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/faultline"
	"repro/internal/xmltree"
)

// JournaledDB is a DB with durable updates: every Insert/Remove is
// appended to a write-ahead journal before being applied, and Compact
// folds the journal into a snapshot. Opening the same directory again
// restores the snapshot and replays the journal, so the database — the
// update log included — survives restarts without the "maintenance
// hours" rebuild.
//
// Layout: <dir>/snapshot.lxml (full store state, may be absent) and
// <dir>/journal.wal (records appended since the snapshot). A torn tail
// record (crash mid-write) is detected by checksum and ignored.
type JournaledDB struct {
	*DB
	dir  string
	fs   faultline.FS
	wal  faultline.File
	sync bool

	// Replication state. Every append gets the next monotonic sequence
	// number; walStart is the sequence of the record just before the
	// first one still in journal.wal, and horizon is the lowest sequence
	// a subscriber may resume from (records at or below it are folded
	// into the snapshot). mu serializes appends, compaction and WAL
	// reads so the record order on disk is the sequence order.
	mu       sync.Mutex
	seq      int64
	walStart int64
	horizon  int64
	tap      func(seq int64, rec []byte)

	// Group commit (DESIGN.md §15). With groupCommit set, a
	// JournaledCollection routes writes through a per-shard commit lane
	// whose leader opens a staging window: appends land in pending instead
	// of the file, and flushStagedLocked writes the whole batch with one
	// Write and one Sync before any waiter is acked. window is how long
	// the lane leader waits for more writers before draining. failed is
	// the poison set by a batch flush that could not make its records
	// durable: the in-memory store is then ahead of the WAL, so every
	// later append is refused rather than diverging further.
	groupCommit bool
	window      time.Duration
	staging     bool
	pending     [][]byte
	failed      error
}

const (
	journalName  = "journal.wal"
	snapshotName = "snapshot.lxml"
	seqMetaName  = "journal.seq"
	docsSeqName  = "docs.seq"
	seqMetaMagic = "LXSQ1"

	opInsert byte = 1
	opRemove byte = 2
)

// JournalOption configures OpenJournal.
type JournalOption func(*JournaledDB)

// WithSync makes every update fsync the journal before returning
// (durable against power loss, slower). Without it the OS page cache
// decides.
func WithSync() JournalOption { return func(j *JournaledDB) { j.sync = true } }

// WithFS routes every file operation the journal layer makes — WAL
// appends, snapshots, seq-meta persistence — through fs instead of the
// real filesystem. Tests inject faults (failed fsyncs, torn writes,
// crash-after-N) this way; nil restores the default.
func WithFS(fs faultline.FS) JournalOption { return func(j *JournaledDB) { j.fs = fs } }

// WithGroupCommit enables leader-based group commit (DESIGN.md §15):
// concurrent writers enqueue on a per-shard commit lane, one leader
// drains the queue, appends the whole batch to the WAL in a single
// write plus a single fsync, publishes one MVCC generation for the
// batch, and wakes every waiter with its individual result — no caller
// observes success before its record is durable. window is how long
// the leader waits for more writers to arrive before draining (0 means
// batch only what has already queued up — "natural" batching under
// load, no added latency when idle).
func WithGroupCommit(window time.Duration) JournalOption {
	return func(j *JournaledDB) {
		j.groupCommit = true
		if window > 0 {
			j.window = window
		}
	}
}

// OpenJournal opens (or creates) a journaled database in dir. The mode
// and options apply when no snapshot exists yet; afterwards the
// snapshot's own settings win. Journal records found after the snapshot
// are replayed.
func OpenJournal(dir string, mode Mode, dbOpts []Option, jOpts ...JournalOption) (*JournaledDB, error) {
	j := &JournaledDB{dir: dir}
	for _, o := range jOpts {
		o(j)
	}
	if j.fs == nil {
		j.fs = faultline.OS
	}
	if err := j.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var db *DB
	haveSnap := false
	snapPath := filepath.Join(dir, snapshotName)
	if _, err := j.fs.Stat(snapPath); err == nil {
		haveSnap = true
		f, err := j.fs.Open(snapPath)
		if err != nil {
			return nil, err
		}
		db, err = Restore(bufio.NewReader(f), dbOpts...)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("lazyxml: restoring %s: %w", snapPath, err)
		}
	} else {
		db = Open(mode, dbOpts...)
	}
	j.DB = db
	base, haveMeta, err := readSeqMeta(j.fs, filepath.Join(dir, seqMetaName))
	if err != nil {
		return nil, err
	}
	j.walStart, j.horizon = base, base
	replayed, cleanLen, err := j.replay()
	if err != nil {
		return nil, err
	}
	j.seq = j.walStart + replayed
	if haveSnap && !haveMeta {
		// A snapshot from before sequence numbers existed: the records it
		// folded in are uncounted, so no subscriber below the current
		// position can be served correctly from this WAL alone.
		j.horizon = j.seq
	}
	walPath := filepath.Join(dir, journalName)
	// Cut a torn tail off before appending: otherwise the next append
	// would land after the garbage and be unreachable by future replays
	// (and the byte offset of record k would stop matching its encoding).
	if fi, err := j.fs.Stat(walPath); err == nil && fi.Size() > cleanLen {
		if err := j.fs.Truncate(walPath, cleanLen); err != nil {
			return nil, err
		}
	}
	wal, err := j.fs.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	j.wal = wal
	return j, nil
}

// replay applies the journal's records to the restored store, stopping
// cleanly at a torn tail. It returns how many records it applied and
// the byte length of the clean prefix they occupy.
func (j *JournaledDB) replay() (n, cleanLen int64, err error) {
	f, err := j.fs.Open(filepath.Join(j.dir, journalName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	for {
		rec, err := readRecord(br)
		if err == io.EOF {
			return n, cleanLen, nil
		}
		if err != nil {
			// Torn or corrupt tail: everything before it was applied;
			// the tail is cut off before the journal reopens for appends.
			return n, cleanLen, nil
		}
		switch rec.op {
		case opInsert:
			if _, err := j.DB.Insert(rec.gp, rec.frag); err != nil {
				return n, cleanLen, fmt.Errorf("lazyxml: replaying insert at %d: %w", rec.gp, err)
			}
		case opRemove:
			if err := j.DB.Remove(rec.gp, rec.l); err != nil {
				return n, cleanLen, fmt.Errorf("lazyxml: replaying remove [%d,%d): %w", rec.gp, rec.gp+rec.l, err)
			}
		default:
			return n, cleanLen, nil // unknown op: treat as corrupt tail
		}
		n++
		cleanLen += int64(len(encodeRecord(rec)))
	}
}

type walRecord struct {
	op   byte
	gp   int
	l    int
	frag []byte
}

// encodeRecord renders a record: op, gp, l, frag, crc32 of the payload.
func encodeRecord(rec walRecord) []byte {
	buf := []byte{rec.op}
	buf = binary.AppendVarint(buf, int64(rec.gp))
	buf = binary.AppendVarint(buf, int64(rec.l))
	if rec.op == opInsert {
		buf = append(buf, rec.frag...)
	}
	sum := crc32.ChecksumIEEE(buf)
	return binary.AppendUvarint(buf, uint64(sum))
}

func readRecord(br *bufio.Reader) (walRecord, error) {
	var rec walRecord
	op, err := br.ReadByte()
	if err != nil {
		return rec, io.EOF
	}
	rec.op = op
	payload := []byte{op}
	gp, err := binary.ReadVarint(br)
	if err != nil {
		return rec, fmt.Errorf("torn gp")
	}
	payload = binary.AppendVarint(payload, gp)
	l, err := binary.ReadVarint(br)
	if err != nil {
		return rec, fmt.Errorf("torn length")
	}
	payload = binary.AppendVarint(payload, l)
	rec.gp, rec.l = int(gp), int(l)
	if rec.gp < 0 || rec.l < 0 || rec.l > 1<<30 {
		return rec, fmt.Errorf("corrupt record header")
	}
	if op == opInsert {
		rec.frag = make([]byte, rec.l)
		if _, err := io.ReadFull(br, rec.frag); err != nil {
			return rec, fmt.Errorf("torn fragment")
		}
		payload = append(payload, rec.frag...)
	}
	sum, err := binary.ReadUvarint(br)
	if err != nil {
		return rec, fmt.Errorf("torn checksum")
	}
	if uint32(sum) != crc32.ChecksumIEEE(payload) {
		return rec, fmt.Errorf("checksum mismatch")
	}
	return rec, nil
}

// append writes a record to the journal (before the in-memory apply —
// write-ahead), assigns it the next sequence number and feeds the
// replication tap. The mutex makes the on-disk record order the
// sequence order even under concurrent writers.
//
// While a group-commit staging window is open the record is buffered in
// pending instead: the batch leader applies ops under the collection
// lock, so the buffer order is the apply order, and flushStagedLocked
// later writes the concatenation, assigns sequence numbers and fires
// the taps in exactly that order — the WAL ends up byte-identical to a
// record-at-a-time execution.
func (j *JournaledDB) append(rec walRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed != nil {
		return j.failed
	}
	if j.wal == nil {
		return fmt.Errorf("lazyxml: journal is closed")
	}
	enc := encodeRecord(rec)
	if j.staging {
		j.pending = append(j.pending, enc)
		return nil
	}
	if _, err := j.wal.Write(enc); err != nil {
		return err
	}
	if j.sync {
		if err := j.wal.Sync(); err != nil {
			return err
		}
	}
	j.seq++
	if j.tap != nil {
		j.tap(j.seq, enc)
	}
	return nil
}

// beginStage opens a staging window: until flushStaged, appends buffer
// in memory. Only the commit-lane leader calls it, under jc.cmu.
func (j *JournaledDB) beginStage() {
	j.mu.Lock()
	j.staging = true
	j.mu.Unlock()
}

// flushStaged closes the staging window and makes the batch durable:
// one Write of the concatenated records, one Sync (when the journal is
// sync-on-ack), then sequence numbers and replication taps in buffer
// order. On a write or sync failure the journal is poisoned — the
// in-memory store already applied the staged ops, so accepting further
// appends would let the WAL diverge from what a reopen can replay. It
// returns the number of records flushed.
func (j *JournaledDB) flushStaged() (int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	pending := j.pending
	j.pending, j.staging = nil, false
	if len(pending) == 0 {
		return 0, j.failed
	}
	if j.failed != nil {
		return 0, j.failed
	}
	if j.wal == nil {
		return 0, fmt.Errorf("lazyxml: journal is closed")
	}
	total := 0
	for _, enc := range pending {
		total += len(enc)
	}
	buf := make([]byte, 0, total)
	for _, enc := range pending {
		buf = append(buf, enc...)
	}
	if _, err := j.wal.Write(buf); err != nil {
		j.failed = fmt.Errorf("lazyxml: group-commit flush failed, journal poisoned: %w", err)
		return 0, err
	}
	if j.sync {
		if err := j.wal.Sync(); err != nil {
			j.failed = fmt.Errorf("lazyxml: group-commit flush failed, journal poisoned: %w", err)
			return 0, err
		}
	}
	for _, enc := range pending {
		j.seq++
		if j.tap != nil {
			j.tap(j.seq, enc)
		}
	}
	return len(pending), nil
}

// poison marks the journal failed (sticky) if it isn't already.
func (j *JournaledDB) poison(err error) {
	j.mu.Lock()
	if j.failed == nil {
		j.failed = err
	}
	j.mu.Unlock()
}

// poisonErr reports the journal's sticky failure, if any.
func (j *JournaledDB) poisonErr() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.failed
}

// Insert journals and applies a segment insertion.
func (j *JournaledDB) Insert(gp int, fragment []byte) (SID, error) {
	// Validate before journaling so a bad fragment never pollutes the WAL.
	if _, err := ValidateFragment(fragment); err != nil {
		return 0, err
	}
	if err := j.append(walRecord{op: opInsert, gp: gp, l: len(fragment), frag: fragment}); err != nil {
		return 0, err
	}
	return j.DB.Insert(gp, fragment)
}

// Append journals and applies an insertion at the end of the document.
func (j *JournaledDB) Append(fragment []byte) (SID, error) {
	return j.Insert(j.DB.Len(), fragment)
}

// Remove journals and applies a range removal.
func (j *JournaledDB) Remove(gp, l int) error {
	if err := j.append(walRecord{op: opRemove, gp: gp, l: l}); err != nil {
		return err
	}
	return j.DB.Remove(gp, l)
}

// RemoveElementAt removes (journaled) the element starting at gp.
func (j *JournaledDB) RemoveElementAt(gp int) error {
	l, err := j.DB.ElementExtentAt(gp)
	if err != nil {
		return err
	}
	return j.Remove(gp, l)
}

// Compact folds the journal into a fresh snapshot: the store state is
// written to snapshot.lxml (atomically, via rename), the journal is
// truncated, and the replication horizon advances to the current
// sequence — subscribers further behind must re-seed from a snapshot.
func (j *JournaledDB) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.staging || len(j.pending) > 0 {
		// A snapshot taken now would fold in staged-but-unflushed ops that
		// the pending records would then replay a second time. The commit
		// lane holds cmu across a batch, and JournaledCollection.Compact
		// takes it, so this only guards direct JournaledDB use.
		return fmt.Errorf("lazyxml: compact during an open group-commit batch")
	}
	if j.failed != nil {
		return j.failed
	}
	tmp := filepath.Join(j.dir, snapshotName+".tmp")
	f, err := j.fs.Create(tmp)
	if err != nil {
		return err
	}
	if err := j.DB.Snapshot(f); err != nil {
		f.Close()
		j.fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := j.fs.Rename(tmp, filepath.Join(j.dir, snapshotName)); err != nil {
		return err
	}
	if err := j.wal.Truncate(0); err != nil {
		return err
	}
	j.walStart, j.horizon = j.seq, j.seq
	return writeSeqMeta(j.fs, filepath.Join(j.dir, seqMetaName), j.walStart)
}

// Close flushes and closes the journal; the DB remains usable in memory
// but further journaled updates fail.
func (j *JournaledDB) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.wal == nil {
		return nil
	}
	err := j.wal.Sync()
	if cerr := j.wal.Close(); err == nil {
		err = cerr
	}
	j.wal = nil
	return err
}

// ValidateFragment checks that a fragment is a well-formed XML segment
// (exactly what Insert requires) and returns its element count. The
// journal uses it so a rejected fragment never reaches the WAL.
func ValidateFragment(fragment []byte) (int, error) {
	d, err := xmltree.ParseFragment(fragment)
	if err != nil {
		return 0, err
	}
	return d.Len(), nil
}
