package lazyxml

import (
	"fmt"
	"sort"
	"sync"
)

// Collection manages named XML documents inside one lazy database — the
// paper's model of "the whole XML database, whether it has been organized
// with a tree or many sub-trees" as a single super document under a dummy
// root. Each named document is one top-level segment; queries can run
// over the whole collection or be scoped to one document by restricting
// matches to the document's current global span.
type Collection struct {
	mu   sync.RWMutex
	db   *DB
	docs map[string]SID
}

// NewCollection returns an empty collection backed by a fresh database.
func NewCollection(mode Mode, opts ...Option) *Collection {
	return &Collection{db: Open(mode, opts...), docs: map[string]SID{}}
}

// DB exposes the underlying database (whole-collection queries, stats,
// snapshots).
func (c *Collection) DB() *DB { return c.db }

// Put adds a named document (one well-formed XML document) to the
// collection. The name must be new.
func (c *Collection) Put(name string, text []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.docs[name]; exists {
		return fmt.Errorf("lazyxml: document %q already exists", name)
	}
	sid, err := c.db.Append(text)
	if err != nil {
		return err
	}
	c.docs[name] = sid
	return nil
}

// Delete removes a named document and its text.
func (c *Collection) Delete(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	sid, ok := c.docs[name]
	if !ok {
		return fmt.Errorf("lazyxml: unknown document %q", name)
	}
	seg, ok := c.db.store.SegmentTree().Lookup(sid)
	if !ok {
		return fmt.Errorf("lazyxml: document %q segment %d vanished", name, sid)
	}
	if err := c.db.Remove(seg.GP, seg.L); err != nil {
		return err
	}
	delete(c.docs, name)
	return nil
}

// Names lists the document names in sorted order.
func (c *Collection) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.docs))
	for name := range c.docs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of documents.
func (c *Collection) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.docs)
}

// span returns the current global span of a named document.
func (c *Collection) span(name string) (lo, hi int, err error) {
	sid, ok := c.docs[name]
	if !ok {
		return 0, 0, fmt.Errorf("lazyxml: unknown document %q", name)
	}
	seg, ok := c.db.store.SegmentTree().Lookup(sid)
	if !ok {
		return 0, 0, fmt.Errorf("lazyxml: document %q segment %d vanished", name, sid)
	}
	return seg.GP, seg.End(), nil
}

// Text returns the current text of a named document.
func (c *Collection) Text(name string) ([]byte, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	lo, hi, err := c.span(name)
	if err != nil {
		return nil, err
	}
	whole, err := c.db.Text()
	if err != nil {
		return nil, err
	}
	return whole[lo:hi], nil
}

// Insert inserts a fragment at an offset relative to the named document.
func (c *Collection) Insert(name string, off int, fragment []byte) (SID, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	lo, hi, err := c.span(name)
	if err != nil {
		return 0, err
	}
	if off < 0 || lo+off > hi {
		return 0, fmt.Errorf("lazyxml: offset %d outside document %q (%d bytes)", off, name, hi-lo)
	}
	return c.db.Insert(lo+off, fragment)
}

// Query evaluates a path expression over the whole collection.
func (c *Collection) Query(path string) ([]Match, error) { return c.db.Query(path) }

// QueryDoc evaluates a path expression scoped to one named document:
// only matches whose elements lie inside the document's span qualify.
// Positions in the returned matches remain global.
func (c *Collection) QueryDoc(name, path string) ([]Match, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	lo, hi, err := c.span(name)
	if err != nil {
		return nil, err
	}
	ms, err := c.db.Query(path)
	if err != nil {
		return nil, err
	}
	out := ms[:0:0]
	for _, m := range ms {
		// A structural match is inside the document iff its descendant
		// is (the ancestor contains the descendant, and documents are
		// top-level disjoint spans). Single-step paths have only Desc.
		if m.DescStart >= lo && m.DescEnd <= hi {
			out = append(out, m)
		}
	}
	return out, nil
}

// CountDoc returns the number of matches of path inside one document.
func (c *Collection) CountDoc(name, path string) (int, error) {
	ms, err := c.QueryDoc(name, path)
	if err != nil {
		return 0, err
	}
	return len(ms), nil
}
