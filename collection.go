package lazyxml

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// engine is the mutation surface a Collection drives. Both *DB and
// *JournaledDB satisfy it, so the same named-document layer works over
// an in-memory database and a journal-backed one: a journaled collection
// routes every update through the write-ahead log while reads keep
// using the shared in-memory store.
type engine interface {
	Append(fragment []byte) (SID, error)
	Insert(gp int, fragment []byte) (SID, error)
	Remove(gp, l int) error
}

var (
	_ engine = (*DB)(nil)
	_ engine = (*JournaledDB)(nil)
)

// Collection manages named XML documents inside one lazy database — the
// paper's model of "the whole XML database, whether it has been organized
// with a tree or many sub-trees" as a single super document under a dummy
// root. Each named document is one top-level segment; queries can run
// over the whole collection or be scoped to one document by restricting
// matches to the document's current global span.
type Collection struct {
	mu   sync.RWMutex
	db   *DB
	eng  engine
	docs map[string]SID
	qp   *QueryPlanner // planned-query state; nil until EnablePlanner

	// cut is the atomically published immutable copy of docs that MVCC
	// snapshot readers resolve names through without taking mu (see
	// view.go). Rename-class mutations (Put, Delete, Collapse re-point)
	// invalidate it under the write lock; readers rebuild it lazily.
	cut atomic.Pointer[docsCut]

	// pinned is the pre-batch cut held steady while a group-commit batch
	// is open (guarded by mu). Snapshot readers resolve names through it
	// so the name map they see stays consistent with the pre-batch store
	// view the deferred generation keeps serving; it drops, and the live
	// map becomes visible, in the same critical section that publishes
	// the batch's generation.
	pinned *docsCut
}

// NewCollection returns an empty collection backed by a fresh database.
func NewCollection(mode Mode, opts ...Option) *Collection {
	db := Open(mode, opts...)
	return &Collection{db: db, eng: db, docs: map[string]SID{}}
}

// DB exposes the underlying database (whole-collection queries, stats,
// snapshots).
func (c *Collection) DB() *DB { return c.db }

// Put adds a named document (one well-formed XML document) to the
// collection. The name must be new.
func (c *Collection) Put(name string, text []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.docs[name]; exists {
		return fmt.Errorf("lazyxml: document %q already exists", name)
	}
	sid, err := c.eng.Append(text)
	if err != nil {
		return err
	}
	c.docs[name] = sid
	c.invalidateCut()
	return nil
}

// Delete removes a named document and its text.
func (c *Collection) Delete(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	sid, ok := c.docs[name]
	if !ok {
		return fmt.Errorf("lazyxml: unknown document %q", name)
	}
	gp, end, ok := c.db.store.SegmentSpan(sid)
	if !ok {
		return fmt.Errorf("lazyxml: document %q segment %d vanished", name, sid)
	}
	if err := c.eng.Remove(gp, end-gp); err != nil {
		return err
	}
	delete(c.docs, name)
	c.invalidateCut()
	return nil
}

// Names lists the document names in sorted order. During a group-commit
// batch the pre-batch cut answers, so a name is never listed before its
// record is durable.
func (c *Collection) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	docs := c.docs
	if c.pinned != nil {
		docs = c.pinned.docs
	}
	out := make([]string, 0, len(docs))
	for name := range docs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of documents (pre-batch during a group-commit
// batch, matching Names).
func (c *Collection) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.pinned != nil {
		return len(c.pinned.docs)
	}
	return len(c.docs)
}

// span returns the current global span of a named document, read under
// the store lock so it is safe against a concurrent same-shard writer.
func (c *Collection) span(name string) (lo, hi int, err error) {
	sid, ok := c.docs[name]
	if !ok {
		return 0, 0, fmt.Errorf("lazyxml: unknown document %q", name)
	}
	lo, hi, ok = c.db.store.SegmentSpan(sid)
	if !ok {
		return 0, 0, fmt.Errorf("lazyxml: document %q segment %d vanished", name, sid)
	}
	return lo, hi, nil
}

// Text returns the current text of a named document, read from an MVCC
// snapshot view: span lookup and text copy come from one immutable
// generation, so a concurrent writer shifting the document can never
// tear the slice — and is never blocked by the read.
func (c *Collection) Text(name string) ([]byte, error) {
	dv, err := c.View(name)
	if err != nil {
		return nil, err
	}
	defer dv.Release()
	return dv.Text()
}

// Insert inserts a fragment at an offset relative to the named document.
func (c *Collection) Insert(name string, off int, fragment []byte) (SID, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	lo, hi, err := c.span(name)
	if err != nil {
		return 0, err
	}
	if off < 0 || lo+off > hi {
		return 0, fmt.Errorf("lazyxml: offset %d outside document %q (%d bytes)", off, name, hi-lo)
	}
	return c.eng.Insert(lo+off, fragment)
}

// Remove removes the byte range [off, off+l) relative to the named
// document. The range must lie inside the document's span and cover
// whole elements so the super document stays well-formed.
func (c *Collection) Remove(name string, off, l int) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	lo, hi, err := c.span(name)
	if err != nil {
		return err
	}
	if l <= 0 {
		return fmt.Errorf("lazyxml: removal length %d must be positive", l)
	}
	if off < 0 || lo+off+l > hi {
		return fmt.Errorf("lazyxml: range [%d,%d) outside document %q (%d bytes)", off, off+l, name, hi-lo)
	}
	return c.eng.Remove(lo+off, l)
}

// RemoveElementAt removes the single element whose start tag begins at
// the given offset relative to the named document. It needs the retained
// text to find the element's extent.
func (c *Collection) RemoveElementAt(name string, off int) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	lo, hi, err := c.span(name)
	if err != nil {
		return err
	}
	if off < 0 || lo+off >= hi {
		return fmt.Errorf("lazyxml: offset %d outside document %q (%d bytes)", off, name, hi-lo)
	}
	l, err := c.db.ElementExtentAt(lo + off)
	if err != nil {
		return err
	}
	if lo+off+l > hi {
		return fmt.Errorf("lazyxml: element at %d extends past document %q", off, name)
	}
	return c.eng.Remove(lo+off, l)
}

// Collapse packs a named document's segment subtree into one fresh
// segment (the paper's §5.3 remedy when the update log grows too large
// for query performance) and returns the document's new segment id.
func (c *Collection) Collapse(name string) (SID, error) {
	return c.collapseVia(name, nil)
}

// collapseVia is the collapse algorithm, expressed as engine operations
// so a journaled engine records it in the WAL and replay reproduces it —
// an unjournaled collapse would desynchronize the persisted name→SID map
// from what replay rebuilds. The copy of the document is inserted at the
// document's start (a boundary insert shifts the original right and
// creates a sibling, never a nested child), then the name is re-pointed
// via repoint, then the original is removed. Each prefix of that record
// sequence recovers to a consistent old-or-new state: after the insert
// alone the original still owns the name; once the name moves, the
// original is the unreferenced copy.
func (c *Collection) collapseVia(name string, repoint func(nsid SID) error) (SID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sid, ok := c.docs[name]
	if !ok {
		return 0, fmt.Errorf("lazyxml: unknown document %q", name)
	}
	gp, end, ok := c.db.store.SegmentSpan(sid)
	if !ok {
		return 0, fmt.Errorf("lazyxml: document %q segment %d vanished", name, sid)
	}
	l := end - gp
	region, ok, err := c.db.store.SegmentText(sid)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("lazyxml: document %q segment %d vanished", name, sid)
	}
	nsid, err := c.eng.Insert(gp, region)
	if err != nil {
		return 0, err
	}
	if repoint != nil {
		if err := repoint(nsid); err != nil {
			return 0, err
		}
	}
	c.docs[name] = nsid
	c.invalidateCut()
	if err := c.eng.Remove(gp+l, l); err != nil {
		return nsid, err
	}
	return nsid, nil
}

// CollapseAll collapses every document in turn — the collection's
// equivalent of Rebuild that keeps the name→segment map valid.
func (c *Collection) CollapseAll() error {
	for _, name := range c.Names() {
		if _, err := c.Collapse(name); err != nil {
			return err
		}
	}
	return nil
}

// DocSegments reports the current segment count of every document's
// subtree, sorted by name. Each count is taken under the store lock but
// the walk over documents is not atomic as a whole — the census is a
// maintenance signal, not a snapshot.
func (c *Collection) DocSegments() []DocSegStat {
	c.mu.RLock()
	names := make([]string, 0, len(c.docs))
	sids := make([]SID, 0, len(c.docs))
	for name, sid := range c.docs {
		names = append(names, name)
		sids = append(sids, sid)
	}
	c.mu.RUnlock()
	out := make([]DocSegStat, 0, len(names))
	for i, name := range names {
		if n, ok := c.db.store.SubtreeSegments(sids[i]); ok {
			out = append(out, DocSegStat{Name: name, Segments: n})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SID returns the segment id of a named document.
func (c *Collection) SID(name string) (SID, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	sid, ok := c.docs[name]
	return sid, ok
}

// pinCutLocked freezes the current name map as the cut snapshot readers
// resolve through for the duration of a group-commit batch. Caller
// holds c.mu (write).
func (c *Collection) pinCutLocked() {
	c.pinned = c.loadCutRLocked()
}

// unpinCutLocked drops the pinned cut and invalidates the published
// one, making the post-batch name map visible to readers. Caller holds
// c.mu (write) — the same critical section that publishes the batch's
// generation, so readers never pair a fresh cut with a stale view or
// vice versa.
func (c *Collection) unpinCutLocked() {
	c.pinned = nil
	c.invalidateCut()
}

// resolveRLocked resolves a name for a snapshot reader: through the
// pinned pre-batch cut while a group-commit batch is open, through the
// live map otherwise. Caller holds c.mu (read or write).
func (c *Collection) resolveRLocked(name string) (SID, bool) {
	if c.pinned != nil {
		sid, ok := c.pinned.docs[name]
		return sid, ok
	}
	sid, ok := c.docs[name]
	return sid, ok
}

// Stats returns the underlying database's sizes and counters.
func (c *Collection) Stats() Stats { return c.db.Stats() }

// CheckConsistency verifies the update log and element index against the
// re-parsed super document.
func (c *Collection) CheckConsistency() error { return c.db.CheckConsistency() }

// ShardCount reports one shard: a plain collection is a single store.
func (c *Collection) ShardCount() int { return 1 }

// ShardOf routes every name to the only shard.
func (c *Collection) ShardOf(name string) int { return 0 }

// ShardStats reports the whole collection as shard 0, so the /stats
// shard dimension is uniform whether or not the store is sharded.
func (c *Collection) ShardStats() []ShardStat {
	return []ShardStat{{Shard: 0, Docs: c.Len(), Stats: c.Stats()}}
}

// Count returns the number of matches of path over the whole collection.
func (c *Collection) Count(path string) (int, error) { return c.db.Count(path) }

// Query evaluates a path expression over the whole collection.
func (c *Collection) Query(path string) ([]Match, error) { return c.db.Query(path) }

// QueryDoc evaluates a path expression scoped to one named document:
// only matches whose elements lie inside the document's span qualify.
// Positions in the returned matches remain global. Span resolution and
// query run against one MVCC snapshot view, so the result is a
// consistent cut even under concurrent writers and maintenance.
func (c *Collection) QueryDoc(name, path string) ([]Match, error) {
	dv, err := c.View(name)
	if err != nil {
		return nil, err
	}
	defer dv.Release()
	return dv.Query(path)
}

// CountDoc returns the number of matches of path inside one document.
func (c *Collection) CountDoc(name, path string) (int, error) {
	ms, err := c.QueryDoc(name, path)
	if err != nil {
		return 0, err
	}
	return len(ms), nil
}
